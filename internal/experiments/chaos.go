package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// runChaos drives the full robustness stack through a scheduled
// multi-day fault campaign — the degradation ladder's acceptance test.
// One host polls three statistically identical stratum-1 servers while
// the fault schedule walks through the failure modes a real deployment
// meets:
//
//   - a network partition cuts two of the three servers: the combined
//     clock must drop to DEGRADED (quorum lost) while tracking the
//     surviving server, then recover to SYNCED when the partition
//     heals;
//   - a total upstream outage blackholes every server: the clock must
//     enter HOLDOVER, coast on the frozen p̂_l with its error inside
//     the advertised ErrScale + DriftBound·age envelope for the whole
//     outage, and re-synchronize afterwards without a restart;
//   - one server dies and comes back permanently wrong by 2 ms: the
//     selection stage must evict the returned falseticker while the
//     ladder keeps reporting SYNCED off the two good servers.
//
// Throughout, the combined clock must never read UNSYNCED once it has
// first synchronized.
func runChaos(opts Options) (*Report, error) {
	r := newReport("chaos", Title("chaos"))
	const poll = 16.0
	dur := opts.scale(2 * timebase.Day)

	partFrom, partTo := 0.20*dur, 0.28*dur
	outFrom, outTo := 0.45*dur, 0.55*dur
	deathAt, deathFor := 0.70*dur, 0.05*dur
	const stepAfter = 2 * timebase.Millisecond

	servers := []sim.ServerSpec{sim.ServerInt(), sim.ServerInt(), sim.ServerInt()}
	sc := sim.NewMultiScenario(sim.MachineRoom, servers, poll, dur, opts.seed())
	sc.AddPartition([]int{1, 2}, partFrom, partTo)
	sc.AddTotalOutage(outFrom, outTo)
	sc.AddServerDeathRestart(1, deathAt, deathFor, stepAfter)

	st, err := sim.NewMultiStream(sc)
	if err != nil {
		return nil, err
	}

	const (
		holdoverAfter = 64.0 // read-time staleness cap for this run
		staleAfter    = 8    // polls without an answer before a vote is lost
	)
	ens, err := ensemble.New(ensemble.Config{
		Engines:         []core.Config{defaultCfg(poll), defaultCfg(poll), defaultCfg(poll)},
		MinVotingSynced: 2,
		RecoverAfter:    3,
		StaleAfterPolls: staleAfter,
		HoldoverAfter:   holdoverAfter,
		UnsyncedAfter:   2 * dur, // never reached in this run
	})
	if err != nil {
		return nil, err
	}

	series, err := r.newSeries(opts, "series", "t_day", "state", "err_us", "bound_us", "voting")
	if err != nil {
		return nil, err
	}

	// Grid sampling between exchanges: the clock's health as downstream
	// readers see it, including through the outage when no exchange
	// arrives to move the writer.
	const gridStep = 32.0
	osc := st.Osc()
	var (
		gridT = gridStep

		everSynced       bool
		unsyncedAfterUp  int
		holdoverPts      int
		holdoverBreaks   int
		worstBoundRatio  float64
		degradedPts      int
		degradedWrong    int
		recoveredBetween bool

		preFault []float64
		tailErrs []float64

		outRecoverAt = math.Inf(1)
	)
	// Lags before a window's expected state is asserted: staleness must
	// be noticed (staleLag) and the readout must age past the holdover
	// cap (holdGrace).
	staleLag := staleAfter*poll + 2*poll
	holdGrace := holdoverAfter + 2*poll

	sample := func(t float64) error {
		T := osc.ReadTSC(t)
		ro := ens.Readout()
		state := ro.State(T)
		errT := ro.AbsoluteTime(T) - t
		h := ro.Health
		bound := h.ErrScale + h.DriftBound*ro.Age(T)

		if everSynced && state == ensemble.StateUnsynced {
			unsyncedAfterUp++
		}
		switch {
		case t >= outFrom+holdGrace && t < outTo:
			holdoverPts++
			if state != ensemble.StateHoldover {
				holdoverBreaks++
			}
			if bound > 0 {
				if ratio := math.Abs(errT) / bound; ratio > worstBoundRatio {
					worstBoundRatio = ratio
				}
			}
		case t >= partFrom+staleLag && t < partTo:
			degradedPts++
			if state != ensemble.StateDegraded {
				degradedWrong++
			}
		case t >= partTo+staleLag && t < outFrom && state == ensemble.StateSynced:
			recoveredBetween = true
		}
		if t >= 0.15*dur && t < partFrom {
			preFault = append(preFault, errT)
		}
		if t >= deathAt+deathFor+0.05*dur {
			tailErrs = append(tailErrs, errT)
		}
		return series.Append(t/timebase.Day, float64(state), errT/1e-6, bound/1e-6, float64(ro.VotingCount))
	}

	minWeight1 := math.Inf(1)
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		for gridT < e.TrueTf {
			if err := sample(gridT); err != nil {
				return nil, err
			}
			gridT += gridStep
		}
		if e.Lost {
			continue
		}
		if _, err := ens.Process(e.Server, core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
			return nil, fmt.Errorf("chaos: server %d seq %d: %w", e.Server, e.Seq, err)
		}
		ro := ens.Readout()
		if ro.BaseState == ensemble.StateSynced {
			everSynced = true
		}
		if e.TrueTf >= outTo && e.TrueTf < outRecoverAt && ro.State(e.Tf) == ensemble.StateSynced {
			outRecoverAt = e.TrueTf
		}
		if e.TrueTf > deathAt+deathFor {
			if w := ro.Weights()[1]; w < minWeight1 {
				minWeight1 = w
			}
		}
	}
	if err := series.Close(); err != nil {
		return nil, err
	}

	preMed := medianAbs(preFault)
	tailMed := medianAbs(tailErrs)
	recoverTime := outRecoverAt - outTo
	final := ens.Readout()

	r.addLine("schedule: partition{1,2} %.2f–%.2f d, total outage %.2f–%.2f d, server 1 dead %.2f–%.2f d then +%s forever",
		partFrom/timebase.Day, partTo/timebase.Day, outFrom/timebase.Day, outTo/timebase.Day,
		deathAt/timebase.Day, (deathAt+deathFor)/timebase.Day, timebase.FormatDuration(stepAfter))
	r.addLine("holdover: %d grid points, worst |err|/bound %.3f; recovery to SYNCED %.0f s after outage end",
		holdoverPts, worstBoundRatio, recoverTime)
	r.addLine("medians |err|: pre-fault %s, post-falseticker tail %s; server 1 min weight after return %.3f",
		timebase.FormatDuration(preMed), timebase.FormatDuration(tailMed), minWeight1)

	r.addCheck("total outage lands in HOLDOVER", "all grid points in the outage window",
		fmt.Sprintf("%d/%d holdover", holdoverPts-holdoverBreaks, holdoverPts),
		holdoverPts > 0 && holdoverBreaks == 0)
	r.addCheck("holdover error inside advertised envelope", "|err| ≤ ErrScale + DriftBound·age",
		fmt.Sprintf("worst ratio %.3f", worstBoundRatio),
		worstBoundRatio > 0 && worstBoundRatio <= 1)
	r.addCheck("partition degrades without killing the clock", "all grid points DEGRADED",
		fmt.Sprintf("%d/%d degraded", degradedPts-degradedWrong, degradedPts),
		degradedPts > 0 && degradedWrong == 0)
	r.addCheck("SYNCED again between partition and outage", "recovered", fmt.Sprint(recoveredBetween), recoveredBetween)
	r.addCheck("re-syncs after the outage without restart", fmt.Sprintf("≤ %.0f s", 10*poll),
		fmt.Sprintf("%.0f s", recoverTime), recoverTime <= 10*poll)
	r.addCheck("returned falseticker outvoted", "weight < 0.20, tail ≤ 2× pre-fault",
		fmt.Sprintf("weight %.3f, %.2fx", minWeight1, tailMed/preMed),
		minWeight1 < 0.20 && tailMed <= 2*preMed)
	r.addCheck("never UNSYNCED once synchronized", "0 grid points",
		fmt.Sprint(unsyncedAfterUp), everSynced && unsyncedAfterUp == 0)
	_ = final
	return r, nil
}

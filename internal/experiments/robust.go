package experiments

// The robustness experiments (Figures 11a–d, 12, and the SW-NTP
// baseline) run on the streaming harness: scenarios are regenerated as
// pull streams, every per-packet quantity folds into online
// accumulators or latches as it passes, and series artifacts row-stream
// to disk through seriesSink. Figure 12 is the one two-pass case: its
// histogram needs coverage bounds that are only known after a full
// quantile pass, so the identical stream is generated twice — the
// memory ceiling stays flat in the trace length either way.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/swntp"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// runFig11a regenerates Figure 11a: recovery after a multi-day loss of
// data (the paper simulates server unavailability with a 3.8-day gap).
func runFig11a(opts Options) (*Report, error) {
	r := newReport("fig11a", Title("fig11a"))
	dur := 10 * timebase.Day
	gapStart, gapEnd := 4*timebase.Day, 7.8*timebase.Day
	if opts.Quick {
		dur = 2 * timebase.Day
		gapStart, gapEnd = 0.8*timebase.Day, 1.6*timebase.Day
	}
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 64, dur, opts.seed())
	sc.Gaps = []sim.Gap{{From: gapStart, To: gapEnd}}

	sink, err := r.newSeries(opts, "series", "tb_day", "offset_err_us")
	if err != nil {
		return nil, err
	}

	// Error at the last packet before the gap, the first after, and
	// after 30 minutes of recovery data — all latched in stream order.
	var preGap, firstAfter, recovered, lastPHat float64
	var tFirstAfter float64
	havePost, haveRecovered := false, false
	st, err := streamRun(sc, defaultCfg(64), func(e sim.Exchange, res core.Result) error {
		errV := offsetErrOf(res, e)
		if err := sink.Append(e.Tb/timebase.Day, errV/1e-6); err != nil {
			return err
		}
		t := e.TrueTf
		if t < gapStart {
			preGap = errV
		}
		if t > gapEnd && !havePost {
			firstAfter, tFirstAfter = errV, t
			havePost = true
		}
		if havePost && !haveRecovered && t > tFirstAfter+30*timebase.Minute {
			recovered = errV
			haveRecovered = true
		}
		lastPHat = res.PHat
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	r.addLine("gap %.1f days: error before %s, first after %s, after 30min %s",
		(gapEnd-gapStart)/timebase.Day,
		timebase.FormatDuration(preGap), timebase.FormatDuration(firstAfter),
		timebase.FormatDuration(recovered))

	r.addCheck("first post-gap estimate already bounded",
		"|err| ≤ 1ms", timebase.FormatDuration(firstAfter),
		math.Abs(firstAfter) <= timebase.Millisecond)
	r.addCheck("fast recovery (30 min of data)", "|err| ≤ 150µs",
		timebase.FormatDuration(recovered), math.Abs(recovered) <= 150*timebase.Microsecond)
	// The rate estimate's validity across the gap is what makes this
	// possible: no warm-up is needed (Section 5.2).
	trueP := st.Osc().MeanPeriod()
	finalRate := math.Abs(lastPHat/trueP - 1)
	r.addCheck("rate estimate survives the gap", "≤0.1 PPM",
		fmt.Sprintf("%.4f PPM", timebase.PPM(finalRate)), finalRate <= timebase.FromPPM(0.1))
	return r, nil
}

// runFig11b regenerates Figure 11b: a server clock error of 150 ms
// lasting a few minutes. RTT filtering cannot see it (server timestamp
// errors cancel in RTT), so the offset sanity check is the containment.
func runFig11b(opts Options) (*Report, error) {
	r := newReport("fig11b", Title("fig11b"))
	dur := opts.scale(2 * timebase.Day)
	faultAt := dur / 2
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, dur, opts.seed())
	sc.Server.Server.Faults = []netem.FaultWindow{
		{From: faultAt, To: faultAt + 4*timebase.Minute, Offset: 150 * timebase.Millisecond},
	}

	sink, err := r.newSeries(opts, "series", "tb_day", "offset_err_us", "sanity")
	if err != nil {
		return nil, err
	}
	sanityCount := 0
	maxDamage, lastErr := 0.0, 0.0
	if _, err := streamRun(sc, defaultCfg(16), func(e sim.Exchange, res core.Result) error {
		errV := offsetErrOf(res, e)
		s := 0.0
		if res.OffsetSanityTriggered {
			s = 1
			sanityCount++
		}
		if e.TrueTf > timebase.Hour {
			if a := math.Abs(errV); a > maxDamage {
				maxDamage = a
			}
		}
		lastErr = errV
		return sink.Append(e.Tb/timebase.Day, errV/1e-6, s)
	}); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}

	r.addLine("sanity check fired on %d packets; max |err| %s; final |err| %s",
		sanityCount, timebase.FormatDuration(maxDamage),
		timebase.FormatDuration(math.Abs(lastErr)))
	r.addCheck("sanity check triggered", "≥1 packet",
		fmt.Sprint(sanityCount), sanityCount >= 1)
	r.addCheck("damage limited to ~a millisecond", "max ≤ 4ms vs 150ms fault",
		timebase.FormatDuration(maxDamage), maxDamage <= 4*timebase.Millisecond)
	r.addCheck("healed by end of trace", "|err| ≤ 300µs",
		timebase.FormatDuration(math.Abs(lastErr)),
		math.Abs(lastErr) <= 300*timebase.Microsecond)
	return r, nil
}

// runFig11c regenerates Figure 11c: two artificial 0.9 ms upward level
// shifts in the host→server direction — one shorter than the detection
// window T_s (never detected, little impact) and one permanent (detected
// a time T_s later; the estimate then jumps by ≈ Δshift/2 = 0.45 ms, the
// change in path asymmetry, not an algorithm failure).
func runFig11c(opts Options) (*Report, error) {
	r := newReport("fig11c", Title("fig11c"))
	cfg := defaultCfg(16)
	dur := opts.scale(4 * timebase.Day)
	tempAt := dur / 8
	permAt := dur / 2
	tempDur := cfg.ShiftWindow / 3 // below Ts: should never be detected
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, dur, opts.seed())
	sc.Server.Forward.Shifts = []netem.Shift{
		{At: tempAt, Delta: 0.9 * timebase.Millisecond, Duration: tempDur},
		{At: permAt, Delta: 0.9 * timebase.Millisecond},
	}

	sink, err := r.newSeries(opts, "series", "tb_day", "offset_err_us", "shift_detected")
	if err != nil {
		return nil, err
	}
	// Median error well before vs well after the permanent shift. The
	// "before" window is fixed a priori; the "after" window opens two
	// hours past the detection, which the stream reveals in time order —
	// everything later in the pass can test against it directly.
	before := stats.NewStreamingQuantiles(0.5)
	after := stats.NewStreamingQuantiles(0.5)
	var detections []float64
	tempDetected := false
	permDetectedAt := math.Inf(1)
	if _, err := streamRun(sc, cfg, func(e sim.Exchange, res core.Result) error {
		errV := offsetErrOf(res, e)
		t := e.TrueTf
		d := 0.0
		if res.UpwardShiftDetected {
			d = 1
			detections = append(detections, t)
			if t < permAt {
				tempDetected = true
			} else if t < permDetectedAt {
				permDetectedAt = t
			}
		}
		switch {
		case t > tempAt+2*tempDur && t < permAt-timebase.Hour:
			before.Add(errV)
		case t > permDetectedAt+2*timebase.Hour:
			after.Add(errV)
		}
		return sink.Append(e.Tb/timebase.Day, errV/1e-6, d)
	}); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}

	r.addLine("detections at: %v (temp shift at %.2fd for %s, perm at %.2fd)",
		detections, tempAt/timebase.Day, timebase.FormatDuration(tempDur), permAt/timebase.Day)
	r.addCheck("temporary shift (<Ts) never detected", "no detection before perm shift",
		fmt.Sprint(tempDetected), !tempDetected)
	r.addCheck("permanent shift detected", "within ~1.5·Ts",
		timebase.FormatDuration(permDetectedAt-permAt),
		permDetectedAt-permAt > 0 && permDetectedAt-permAt <= 1.5*cfg.ShiftWindow)

	// The jump is ≈ Δshift/2 (asymmetry change), directed negative since
	// the forward minimum grew.
	jump := after.Value(0) - before.Value(0)
	r.addLine("median error before %s, after %s (jump %s; Δ/2 = −450µs)",
		timebase.FormatDuration(before.Value(0)),
		timebase.FormatDuration(after.Value(0)), timebase.FormatDuration(jump))
	r.addCheck("post-shift jump ≈ −Δshift/2", "−650µs…−250µs",
		timebase.FormatDuration(jump), jump > -650e-6 && jump < -250e-6)
	return r, nil
}

// runFig11d regenerates Figure 11d: a natural-style downward level shift
// occurring equally in both directions (Δ unchanged) using ServerExt.
// Detection and reaction are immediate; estimation quality is unchanged.
func runFig11d(opts Options) (*Report, error) {
	r := newReport("fig11d", Title("fig11d"))
	dur := opts.scale(2 * timebase.Day)
	shiftAt := dur / 2
	delta := -0.18 * timebase.Millisecond
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerExt(), 64, dur, opts.seed())
	sc.Server.Forward.Shifts = []netem.Shift{{At: shiftAt, Delta: delta}}
	sc.Server.Backward.Shifts = []netem.Shift{{At: shiftAt, Delta: delta}}

	sink, err := r.newSeries(opts, "series", "tb_day", "offset_err_us", "rtt_hat_ms")
	if err != nil {
		return nil, err
	}
	upward := 0
	// r̂ must absorb the 0.36 ms total downward move promptly.
	rHatAfter, haveRHat := 0.0, false
	before := stats.NewStreamingQuantiles(0.5)
	after := stats.NewStreamingQuantiles(0.5)
	settle := math.Min(3*timebase.Hour, shiftAt/2)
	afterFrom := shiftAt + math.Min(timebase.Hour, (dur-shiftAt)/4)
	if _, err := streamRun(sc, defaultCfg(64), func(e sim.Exchange, res core.Result) error {
		errV := offsetErrOf(res, e)
		t := e.TrueTf
		if res.UpwardShiftDetected {
			upward++
		}
		if !haveRHat && t > shiftAt+2*timebase.Hour {
			rHatAfter, haveRHat = res.RTTHat, true
		}
		switch {
		case t > settle && t < shiftAt:
			before.Add(errV)
		case t > afterFrom:
			after.Add(errV)
		}
		return sink.Append(e.Tb/timebase.Day, errV/1e-6, res.RTTHat/1e-3)
	}); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}

	wantRTT := sc.Server.MinRTT() + 2*delta
	shiftOfMedian := after.Value(0) - before.Value(0)
	r.addLine("r̂ after shift %s (want ≈ %s); median error moved by %s",
		timebase.FormatDuration(rHatAfter), timebase.FormatDuration(wantRTT),
		timebase.FormatDuration(shiftOfMedian))

	r.addCheck("no upward detection for a downward shift", "0",
		fmt.Sprint(upward), upward == 0)
	r.addCheck("r̂ absorbs the shift promptly", "within 100µs of new min",
		timebase.FormatDuration(rHatAfter-wantRTT), math.Abs(rHatAfter-wantRTT) <= 100e-6)
	r.addCheck("no observable change in estimation quality",
		"median moves ≤ 120µs", timebase.FormatDuration(shiftOfMedian),
		math.Abs(shiftOfMedian) <= 120e-6)
	return r, nil
}

// runFig12 regenerates Figure 12: offset error distribution over a
// 3-month run at the standard polling periods 64 and 256, reported as
// the 99%-coverage histogram with median and IQR. Two streaming passes
// per polling period: quantiles first (the histogram range is the 99%
// coverage interval, known only after a full pass), then the identical
// stream again to fill the fixed bins.
func runFig12(opts Options) (*Report, error) {
	r := newReport("fig12", Title("fig12"))
	dur := 13 * timebase.Week
	if opts.Quick {
		dur = timebase.Week
	}

	type outcome struct {
		med, iqr float64
	}
	outcomes := map[float64]outcome{}
	for _, poll := range []float64{64, 256} {
		sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), poll, dur, opts.seed())
		// The paper's 3-month record includes two collection gaps.
		if !opts.Quick {
			sc.Gaps = []sim.Gap{
				{From: 20 * timebase.Day, To: 20*timebase.Day + 1.5*timebase.Hour},
				{From: 45 * timebase.Day, To: 48.8 * timebase.Day},
			}
		}
		// Pass 1: median, quartiles and the 0.5/99.5 coverage bounds.
		q := stats.NewStreamingQuantiles(0.005, 0.25, 0.5, 0.75, 0.995)
		if _, err := streamRun(sc, defaultCfg(poll), func(e sim.Exchange, res core.Result) error {
			if e.TrueTf > 3*timebase.Hour {
				q.Add(offsetErrOf(res, e))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		med := q.Value(2)
		iqr := q.Value(3) - q.Value(1)
		lo, hi := q.Value(0), q.Value(4)
		outcomes[poll] = outcome{med: med, iqr: iqr}

		// Pass 2: fill the histogram over the now-known range.
		hist, err := stats.NewHistogram(nil, lo, hi+1e-12, 40)
		if err != nil {
			return nil, err
		}
		if _, err := streamRun(sc, defaultCfg(poll), func(e sim.Exchange, res core.Result) error {
			if e.TrueTf > 3*timebase.Hour {
				hist.Add(offsetErrOf(res, e))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		tab := trace.NewTable("offset_err_us", "fraction")
		for i := range hist.Counts {
			if err := tab.Append(hist.BinCenter(i)/1e-6, hist.Fraction(i)); err != nil {
				return nil, err
			}
		}
		if err := r.save(opts, fmt.Sprintf("hist_poll%.0f", poll), tab); err != nil {
			return nil, err
		}
		r.addLine("poll %3.0fs over %.0f days: median %s, IQR %s (99%% of values in [%s, %s])",
			poll, dur/timebase.Day, timebase.FormatDuration(med), timebase.FormatDuration(iqr),
			timebase.FormatDuration(lo), timebase.FormatDuration(hi))

		r.addCheck(fmt.Sprintf("poll %.0f median at tens-of-µs (paper: −31/−33µs)", poll),
			"−100µs…0", timebase.FormatDuration(med), med > -100e-6 && med < 0)
		r.addCheck(fmt.Sprintf("poll %.0f IQR small (paper: 15/24µs)", poll),
			"≤ 80µs", timebase.FormatDuration(iqr), iqr <= 80e-6)
	}
	r.addCheck("performance does not change greatly with polling rate",
		"IQR(256) ≤ 3×IQR(64)",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(outcomes[256].iqr),
			timebase.FormatDuration(outcomes[64].iqr)),
		outcomes[256].iqr <= 3*outcomes[64].iqr)
	return r, nil
}

// runBaseline runs the SW-NTP discipline on the same traces as the core
// engine: the implicit comparison of the whole paper. The TSC-NTP clock
// must win by a large factor in steady state and, unlike SW-NTP, must
// not reset on a large server fault. Both estimators consume the same
// stream in one interleaved pass — each engine's state depends only on
// its own inputs, so this is packet-for-packet the old two-run batch.
func runBaseline(opts Options) (*Report, error) {
	r := newReport("baseline", Title("baseline"))
	dur := opts.scale(timebase.Week)
	faultAt := dur * 0.75
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 64, dur, opts.seed())
	// The fault must span enough polls to pass the SW-NTP clock filter's
	// minimum-delay selection (~8 polls between applied samples).
	sc.Server.Server.Faults = []netem.FaultWindow{
		{From: faultAt, To: faultAt + 45*timebase.Minute, Offset: 150 * timebase.Millisecond},
	}

	sw, err := swntp.New(swntp.DefaultConfig(1.0/548655270, 64))
	if err != nil {
		return nil, err
	}
	st, err := sim.NewStream(sc)
	if err != nil {
		return nil, err
	}
	st.SetTrim(true)
	s, err := core.NewSync(defaultCfg(64))
	if err != nil {
		return nil, err
	}
	sink, err := r.newSeries(opts, "comparison", "tb_day", "swntp_err_us", "tsc_err_us")
	if err != nil {
		return nil, err
	}

	swMedAcc, coreMedAcc := stats.NewMedianAbs(), stats.NewMedianAbs()
	swWorst, coreWorst := 0.0, 0.0
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Lost {
			continue
		}
		sw.ProcessExchange(e.Ta, e.Tf, e.Tb, e.Te)
		swErr := sw.Read(e.Tf) - e.Tg
		res, err := s.Process(core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
		if err != nil {
			return nil, fmt.Errorf("experiments: process seq %d: %w", e.Seq, err)
		}
		coreErr := offsetErrOf(res, e)
		if e.TrueTf > 3*timebase.Hour {
			swMedAcc.Add(swErr)
			coreMedAcc.Add(coreErr)
			if a := math.Abs(swErr); a > swWorst {
				swWorst = a
			}
			if a := math.Abs(coreErr); a > coreWorst {
				coreWorst = a
			}
		}
		if err := sink.Append(e.Tb/timebase.Day, swErr/1e-6, coreErr/1e-6); err != nil {
			return nil, err
		}
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	swMed, coreMed := swMedAcc.Value(), coreMedAcc.Value()

	r.addLine("median |error|: SW-NTP %s vs TSC-NTP %s (factor %.1f)",
		timebase.FormatDuration(swMed), timebase.FormatDuration(coreMed), swMed/coreMed)
	r.addLine("worst |error|: SW-NTP %s vs TSC-NTP %s (factor %.0f); SW steps (resets): %d",
		timebase.FormatDuration(swWorst), timebase.FormatDuration(coreWorst),
		swWorst/coreWorst, sw.Steps())

	// The paper's criticism of SW-NTP is reliability, not median-case
	// accuracy on a quiet path: errors "well in excess of RTTs in
	// practice" and occasional large resets.
	r.addCheck("TSC-NTP at least as accurate on median |err|", "ratio ≥ 1",
		fmt.Sprintf("%.1fx", swMed/coreMed), swMed >= coreMed)
	r.addCheck("TSC-NTP crushes SW-NTP worst case (fault contained)", "≥10x",
		fmt.Sprintf("%.0fx", swWorst/coreWorst), swWorst >= 10*coreWorst)
	r.addCheck("SW-NTP resets on the 150 ms fault", "steps ≥ 2",
		fmt.Sprint(sw.Steps()), sw.Steps() >= 2)
	// Core containment on the same event.
	r.addCheck("TSC-NTP contains the same fault without reset",
		"max |err| ≤ 4ms", timebase.FormatDuration(coreWorst), coreWorst <= 4*timebase.Millisecond)
	return r, nil
}

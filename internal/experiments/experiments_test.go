package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig10",
		"fig11a", "fig11b", "fig11c", "fig11d", "fig12", "baseline",
		"ablation", "ensemble", "select", "asym", "longrun", "chaos"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, ids[i], want[i])
		}
		if Title(want[i]) == "" {
			t.Errorf("missing title for %q", want[i])
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestAllExperimentsQuick runs every experiment in quick mode and
// requires every shape check to pass. This is the repository's
// integration test: the full paper evaluation end to end, scaled down.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(rep.Checks) == 0 {
				t.Fatal("experiment has no checks")
			}
			for _, c := range rep.Checks {
				if !c.Pass {
					t.Errorf("check %q: want %s, got %s", c.Name, c.Want, c.Got)
				}
			}
			if !strings.Contains(rep.Render(), rep.ID) {
				t.Error("render missing ID")
			}
		})
	}
}

func TestArtifactsSaved(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run("table1", Options{Quick: true, OutputDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Error("no tables recorded")
	}
}

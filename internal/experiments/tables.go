package experiments

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// runTable1 regenerates Table 1: the translation of rate error (PPM)
// into absolute offset error over the key intervals of the paper. It is
// analytic — the table defines the design targets the algorithms are
// built around — and the checks pin the bold entries the text relies on.
func runTable1(opts Options) (*Report, error) {
	r := newReport("table1", Title("table1"))

	rows := []struct {
		name string
		dt   float64
	}{
		{"Target RTT to NTP server", 1 * timebase.Millisecond},
		{"Typical Internet RTT", 100 * timebase.Millisecond},
		{"Standard unit", 1},
		{"Local SKM validity tau*=1000s", 1000},
		{"1 Daily cycle", timebase.Day},
		{"1 Weekly cycle", timebase.Week},
	}
	rates := []float64{0.02, 0.1}

	tab := trace.NewTable("interval_s", "err_at_0.02ppm_s", "err_at_0.1ppm_s")
	r.addLine("%-32s %-10s %14s %14s", "Significant Time Interval", "Duration", "@0.02 PPM", "@0.1 PPM")
	for _, row := range rows {
		e1 := timebase.OffsetAtRate(row.dt, timebase.FromPPM(rates[0]))
		e2 := timebase.OffsetAtRate(row.dt, timebase.FromPPM(rates[1]))
		if err := tab.Append(row.dt, e1, e2); err != nil {
			return nil, err
		}
		r.addLine("%-32s %-10s %14s %14s", row.name,
			timebase.FormatDuration(row.dt),
			timebase.FormatDuration(e1), timebase.FormatDuration(e2))
	}
	if err := r.save(opts, "rows", tab); err != nil {
		return nil, err
	}

	// The bold entries of the paper's Table 1.
	check := func(name string, dt, ppm, want float64) {
		got := timebase.OffsetAtRate(dt, timebase.FromPPM(ppm))
		r.addCheck(name,
			timebase.FormatDuration(want), timebase.FormatDuration(got),
			math.Abs(got-want) <= 1e-6*want)
	}
	check("1s @ 0.02 PPM = 20ns", 1, 0.02, 20e-9)
	check("tau* @ 0.02 PPM = 20µs", 1000, 0.02, 20e-6)
	check("tau* @ 0.1 PPM = 0.1ms", 1000, 0.1, 0.1e-3)
	check("1 day @ 0.1 PPM = 8.6ms", timebase.Day, 0.1, 8.64e-3)
	return r, nil
}

// runTable2 regenerates Table 2: the characteristics of the three
// stratum-1 servers, measured from week-long traces exactly as the paper
// measured them (minimum RTT over at least a week; asymmetry Δ).
func runTable2(opts Options) (*Report, error) {
	r := newReport("table2", Title("table2"))
	dur := opts.scale(timebase.Week)

	specs := []sim.ServerSpec{sim.ServerLoc(), sim.ServerInt(), sim.ServerExt()}
	wantRTT := []float64{0.38e-3, 0.89e-3, 14.2e-3}
	wantAsym := []float64{50e-6, 50e-6, 500e-6}
	wantHops := []int{2, 5, 10}
	wantRef := []string{"GPS", "GPS", "Atomic"}

	tab := trace.NewTable("min_rtt_s", "hops", "asymmetry_s")
	r.addLine("%-10s %-9s %-10s %8s %6s %10s", "Server", "Reference", "Distance", "RTT", "Hops", "Delta")
	for i, spec := range specs {
		sc := sim.NewScenario(sim.MachineRoom, spec, 16, dur, opts.seed()+uint64(i))
		tr, err := sim.Generate(sc)
		if err != nil {
			return nil, err
		}
		minRTT := tr.MinObservedRTT()
		asym := spec.Asymmetry()
		if err := tab.Append(minRTT, float64(spec.Forward.Hops), asym); err != nil {
			return nil, err
		}
		r.addLine("%-10s %-9s %-10s %8s %6d %10s", spec.Name, spec.Reference,
			fmt.Sprintf("%.0fm", spec.DistanceMeters),
			timebase.FormatDuration(minRTT), spec.Forward.Hops,
			timebase.FormatDuration(asym))

		r.addCheck(spec.Name+" min RTT", timebase.FormatDuration(wantRTT[i]),
			timebase.FormatDuration(minRTT),
			math.Abs(minRTT-wantRTT[i]) < 0.05*wantRTT[i]+30e-6)
		r.addCheck(spec.Name+" asymmetry", timebase.FormatDuration(wantAsym[i]),
			timebase.FormatDuration(asym), math.Abs(asym-wantAsym[i]) < 10e-6)
		r.addCheck(spec.Name+" hops", fmt.Sprint(wantHops[i]),
			fmt.Sprint(spec.Forward.Hops), spec.Forward.Hops == wantHops[i])
		r.addCheck(spec.Name+" reference", wantRef[i], spec.Reference, spec.Reference == wantRef[i])
	}
	if err := r.save(opts, "servers", tab); err != nil {
		return nil, err
	}
	return r, nil
}

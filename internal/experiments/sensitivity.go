package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// sensitivityScenario is the 3-week MR-Int dataset behind Figure 9
// (scaled in Quick mode). The sweeps below regenerate the identical
// stream once per engine configuration instead of materializing the
// trace once: generation is a small fraction of the engine pass, and
// peak memory stays flat in the trace length.
func sensitivityScenario(opts Options, poll float64, seedOff uint64) sim.Scenario {
	dur := opts.scale(3 * timebase.Week)
	return sim.NewScenario(sim.MachineRoom, sim.ServerInt(), poll, dur, opts.seed()+seedOff)
}

// sweepFiveNum streams the scenario through one engine configuration
// and folds the settled offset errors into an online five-number
// summary.
func sweepFiveNum(sc sim.Scenario, cfg core.Config, settle float64) (stats.FiveNum, error) {
	acc := stats.NewStreamingFiveNum()
	_, err := streamRun(sc, cfg, func(e sim.Exchange, res core.Result) error {
		if e.TrueTf > settle {
			acc.Add(offsetErrOf(res, e))
		}
		return nil
	})
	if err != nil {
		return stats.FiveNum{}, err
	}
	return acc.FiveNum(), nil
}

// runFig9a: sensitivity of offset error to the window size τ′/τ*
// over [1/16, 4], E = 4δ, with and without the local rate refinement.
// The paper's result: very low sensitivity, optimum near τ′ = τ*.
func runFig9a(opts Options) (*Report, error) {
	r := newReport("fig9a", Title("fig9a"))
	sc := sensitivityScenario(opts, 16, 0)
	ratios := []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1, 2, 4}

	for _, useLocal := range []bool{false, true} {
		tab := trace.NewTable("ratio", "p01_us", "p25_us", "p50_us", "p75_us", "p99_us")
		var medians []float64
		for _, ratio := range ratios {
			cfg := defaultCfg(16)
			cfg.OffsetWindow = ratio * cfg.TauStar
			cfg.UseLocalRate = useLocal
			if useLocal {
				cfg.LocalRateWindow = 20 * cfg.TauStar // τ̄ = 20τ* per the figure caption
				cfg.TopWindow = math.Max(cfg.TopWindow, 2*cfg.LocalRateWindow)
				cfg.ShiftWindow = cfg.LocalRateWindow / 2
			}
			fn, err := sweepFiveNum(sc, cfg, timebase.Hour)
			if err != nil {
				return nil, err
			}
			if err := tab.Append(ratio, fn.P01/1e-6, fn.P25/1e-6, fn.P50/1e-6, fn.P75/1e-6, fn.P99/1e-6); err != nil {
				return nil, err
			}
			medians = append(medians, fn.P50)
			r.addLine("%s τ'/τ*=%-6.4g %s", localTag(useLocal), ratio, fiveNumFmt("", fn))
		}
		if err := r.save(opts, "sweep_"+localTag(useLocal), tab); err != nil {
			return nil, err
		}
		lo, hi := stats.MinMax(medians)
		r.addCheck(fmt.Sprintf("median insensitive to τ' (%s)", localTag(useLocal)),
			"spread ≤ 30µs", timebase.FormatDuration(hi-lo), hi-lo <= 30*timebase.Microsecond)
		r.addCheck(fmt.Sprintf("medians in the −Δ/2 band (%s)", localTag(useLocal)),
			"−90µs…+10µs", fmt.Sprintf("[%s, %s]", timebase.FormatDuration(lo), timebase.FormatDuration(hi)),
			lo > -90e-6 && hi < 10e-6)
	}
	return r, nil
}

func localTag(useLocal bool) string {
	if useLocal {
		return "local"
	}
	return "nolocal"
}

// runFig9b: sensitivity to the quality parameter E/δ over [1, 20] at
// τ′ = τ*/2. Again: very low sensitivity.
func runFig9b(opts Options) (*Report, error) {
	r := newReport("fig9b", Title("fig9b"))
	sc := sensitivityScenario(opts, 16, 0)
	factors := []float64{1, 2, 3, 4, 7, 10, 20}

	tab := trace.NewTable("e_over_delta", "p01_us", "p25_us", "p50_us", "p75_us", "p99_us")
	var medians, iqrs []float64
	for _, f := range factors {
		cfg := defaultCfg(16)
		cfg.OffsetWindow = cfg.TauStar / 2
		cfg.EFactor = f
		fn, err := sweepFiveNum(sc, cfg, timebase.Hour)
		if err != nil {
			return nil, err
		}
		if err := tab.Append(f, fn.P01/1e-6, fn.P25/1e-6, fn.P50/1e-6, fn.P75/1e-6, fn.P99/1e-6); err != nil {
			return nil, err
		}
		medians = append(medians, fn.P50)
		iqrs = append(iqrs, fn.P75-fn.P25)
		r.addLine("E=%2.0fδ %s", f, fiveNumFmt("", fn))
	}
	if err := r.save(opts, "sweep", tab); err != nil {
		return nil, err
	}
	lo, hi := stats.MinMax(medians)
	r.addCheck("median insensitive to E", "spread ≤ 30µs",
		timebase.FormatDuration(hi-lo), hi-lo <= 30*timebase.Microsecond)
	// Optimal results at small multiples of δ: the IQR at E=4δ is within
	// 2x of the best across the sweep.
	bestIQR, _ := stats.MinMax(iqrs)
	atFour := iqrs[3]
	r.addCheck("E=4δ near-optimal", "IQR(4δ) ≤ 2×best",
		fmt.Sprintf("%s vs %s", timebase.FormatDuration(atFour), timebase.FormatDuration(bestIQR)),
		atFour <= 2*bestIQR)
	return r, nil
}

// runFig9c: sensitivity to polling period over 16–512 s at τ′ = τ*,
// E = 4δ. The paper: the median moves by only a few µs despite a 32x
// reduction in raw information.
func runFig9c(opts Options) (*Report, error) {
	r := newReport("fig9c", Title("fig9c"))
	polls := []float64{16, 32, 64, 128, 256, 512}

	tab := trace.NewTable("poll_s", "p01_us", "p25_us", "p50_us", "p75_us", "p99_us")
	var medians []float64
	for _, poll := range polls {
		fn, err := sweepFiveNum(sensitivityScenario(opts, poll, 0), defaultCfg(poll), 3*timebase.Hour)
		if err != nil {
			return nil, err
		}
		if err := tab.Append(poll, fn.P01/1e-6, fn.P25/1e-6, fn.P50/1e-6, fn.P75/1e-6, fn.P99/1e-6); err != nil {
			return nil, err
		}
		medians = append(medians, fn.P50)
		r.addLine("poll=%3.0fs %s", poll, fiveNumFmt("", fn))
	}
	if err := r.save(opts, "sweep", tab); err != nil {
		return nil, err
	}
	lo, hi := stats.MinMax(medians)
	r.addCheck("median barely moves across 32x polling range",
		"spread ≤ 30µs", timebase.FormatDuration(hi-lo), hi-lo <= 30*timebase.Microsecond)
	r.addCheck("all medians in the −Δ/2 band", "−100µs…+10µs",
		fmt.Sprintf("[%s, %s]", timebase.FormatDuration(lo), timebase.FormatDuration(hi)),
		lo > -100e-6 && hi < 10e-6)
	return r, nil
}

// runFig10 regenerates Figure 10: offset error percentiles across the
// four host-server environments at polling period 64. Moving from the
// laboratory to the machine room reduces variability; the local server
// improves it further; the remote server's median shifts by ≈ −Δ/2.
func runFig10(opts Options) (*Report, error) {
	r := newReport("fig10", Title("fig10"))
	dur := opts.scale(timebase.Week)

	cases := []struct {
		name string
		env  sim.Environment
		spec sim.ServerSpec
	}{
		{"Lab-Int", sim.Laboratory, sim.ServerInt()},
		{"MR-Int", sim.MachineRoom, sim.ServerInt()},
		{"MR-Loc", sim.MachineRoom, sim.ServerLoc()},
		{"MR-Ext", sim.MachineRoom, sim.ServerExt()},
	}

	tab := trace.NewTable("case", "p01_us", "p25_us", "p50_us", "p75_us", "p99_us")
	summaries := map[string]stats.FiveNum{}
	for i, c := range cases {
		sc := sim.NewScenario(c.env, c.spec, 64, dur, opts.seed()+uint64(200+i))
		fn, err := sweepFiveNum(sc, defaultCfg(64), 3*timebase.Hour)
		if err != nil {
			return nil, err
		}
		summaries[c.name] = fn
		if err := tab.Append(float64(i), fn.P01/1e-6, fn.P25/1e-6, fn.P50/1e-6, fn.P75/1e-6, fn.P99/1e-6); err != nil {
			return nil, err
		}
		r.addLine("%s", fiveNumFmt(c.name, fn))
	}
	if err := r.save(opts, "environments", tab); err != nil {
		return nil, err
	}

	iqr := func(f stats.FiveNum) float64 { return f.P75 - f.P25 }
	r.addCheck("machine room tighter than laboratory (IQR)",
		"MR-Int ≤ Lab-Int", fmt.Sprintf("%s vs %s",
			timebase.FormatDuration(iqr(summaries["MR-Int"])),
			timebase.FormatDuration(iqr(summaries["Lab-Int"]))),
		iqr(summaries["MR-Int"]) <= iqr(summaries["Lab-Int"])*1.1)
	r.addCheck("local server at least as tight as internal (IQR)",
		"MR-Loc ≤ 1.2×MR-Int", fmt.Sprintf("%s vs %s",
			timebase.FormatDuration(iqr(summaries["MR-Loc"])),
			timebase.FormatDuration(iqr(summaries["MR-Int"]))),
		iqr(summaries["MR-Loc"]) <= 1.2*iqr(summaries["MR-Int"]))
	r.addCheck("remote server median shifted by ≈ −Δ/2 (−250µs)",
		"−400µs…−120µs", timebase.FormatDuration(summaries["MR-Ext"].P50),
		summaries["MR-Ext"].P50 > -400e-6 && summaries["MR-Ext"].P50 < -120e-6)
	r.addCheck("remote server more variable (quality packets rarer)",
		"IQR(MR-Ext) > IQR(MR-Int)", fmt.Sprintf("%s vs %s",
			timebase.FormatDuration(iqr(summaries["MR-Ext"])),
			timebase.FormatDuration(iqr(summaries["MR-Int"]))),
		iqr(summaries["MR-Ext"]) > iqr(summaries["MR-Int"]))
	r.addCheck("error ≪ remote RTT (14.2ms)", "|median| < 1ms",
		timebase.FormatDuration(summaries["MR-Ext"].P50),
		math.Abs(summaries["MR-Ext"].P50) < timebase.Millisecond)
	return r, nil
}

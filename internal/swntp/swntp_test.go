package swntp

import (
	"math"
	"sort"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/timebase"
)

func run(t testing.TB, tr *sim.Trace) (*Clock, []Update, []sim.Exchange) {
	t.Helper()
	cfg := DefaultConfig(1.0/548655270, tr.Scenario.PollPeriod)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := tr.Completed()
	ups := make([]Update, len(ex))
	for i, e := range ex {
		ups[i] = c.ProcessExchange(e.Ta, e.Tf, e.Tb, e.Te)
	}
	return c, ups, ex
}

func TestValidate(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(DefaultConfig(2e-9, 16)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestConvergesToServerTime(t *testing.T) {
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 61))
	if err != nil {
		t.Fatal(err)
	}
	c, _, ex := run(t, tr)

	// After a day the disciplined clock should track true time to
	// NTP-level accuracy: bounded by ~RTT, i.e. low milliseconds.
	var errsAbs []float64
	for _, e := range ex {
		if e.TrueTf < 20*timebase.Hour {
			continue
		}
		errsAbs = append(errsAbs, math.Abs(c.Read(e.Tf)-e.TrueTf))
	}
	// Re-reading history with the final clock state is not meaningful;
	// instead check the last reading directly.
	last := ex[len(ex)-1]
	if d := math.Abs(c.Read(last.Tf) - last.TrueTf); d > 5*timebase.Millisecond {
		t.Errorf("SW-NTP error %v after a day, want < 5 ms", d)
	}
	_ = errsAbs
}

func TestTracksAfterInit(t *testing.T) {
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerLoc(), 16, 6*timebase.Hour, 62))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1.0/548655270, 16)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for _, e := range tr.Completed() {
		c.ProcessExchange(e.Ta, e.Tf, e.Tb, e.Te)
		if e.TrueTf > 2*timebase.Hour {
			errs = append(errs, c.Read(e.Tf)-e.TrueTf)
		}
	}
	sort.Float64s(errs)
	med := math.Abs(errs[len(errs)/2])
	if med > 2*timebase.Millisecond {
		t.Errorf("median |error| %v, want < 2 ms for a local server", med)
	}
}

func TestStepsOnLargeServerFault(t *testing.T) {
	// A 150 ms server error exceeds the 128 ms step threshold: the
	// SW-NTP clock must step (reset) — the paper's headline criticism —
	// in contrast to the core engine's sanity check containment.
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 6*timebase.Hour, 63)
	sc.Server.Server.Faults = []netem.FaultWindow{
		{From: 3 * timebase.Hour, To: 3*timebase.Hour + 10*timebase.Minute, Offset: 150 * timebase.Millisecond},
	}
	tr, err := sim.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	c, _, _ := run(t, tr)
	if c.Steps() < 2 { // initial set + at least one fault-induced reset
		t.Errorf("steps = %d, want the fault to cause a reset", c.Steps())
	}
}

func TestFrequencyBounded(t *testing.T) {
	tr, err := sim.Generate(sim.NewScenario(sim.Laboratory, sim.ServerExt(), 64, timebase.Day, 64))
	if err != nil {
		t.Fatal(err)
	}
	c, ups, _ := run(t, tr)
	cfg := DefaultConfig(1.0/548655270, 64)
	for i, u := range ups {
		if math.Abs(u.Freq) > cfg.MaxFreqAdj*(1+1e-12) {
			t.Fatalf("freq %v exceeds bound at update %d", u.Freq, i)
		}
	}
	if math.Abs(c.Freq()) > cfg.MaxFreqAdj {
		t.Errorf("final freq %v out of bounds", c.Freq())
	}
}

func TestReadMonotoneDuringSlew(t *testing.T) {
	// Slewing preserves monotonicity (no backwards reads) even with a
	// negative pending correction, because the slew rate (500 PPM) is
	// far below the clock rate.
	cfg := DefaultConfig(2e-9, 16)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.ProcessExchange(1000, 500_001_000, 1.0, 1.0001)
	// Force a negative residual via a second exchange reporting the
	// clock ahead by 10 ms.
	c.ProcessExchange(1_000_000_000, 1_500_000_000, 2.99, 2.9901)
	var prev float64
	for counter := uint64(1_600_000_000); counter < 3_000_000_000; counter += 10_000_000 {
		v := c.Read(counter)
		if v < prev {
			t.Fatalf("clock went backwards: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestUninitializedReadsZero(t *testing.T) {
	c, err := New(DefaultConfig(2e-9, 16))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Read(12345); got != 0 {
		t.Errorf("uninitialized read = %v", got)
	}
}

func TestFilterPrefersMinimumDelay(t *testing.T) {
	cfg := DefaultConfig(2e-9, 16)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initialize.
	c.ProcessExchange(0, 1_000_000, 10, 10.001)
	// A high-delay (congested) exchange whose offset is wild: it becomes
	// the latest sample but NOT the minimum-delay one once a clean
	// sample follows, so its offset must not drive the loop.
	base := uint64(10_000_000_000)
	cleanUp := c.ProcessExchange(base, base+500_000 /* 1 ms RTT */, 30.0, 30.0001)
	_ = cleanUp
	congested := c.ProcessExchange(base+8_000_000_000, base+8_050_000_000 /* 100 ms RTT */, 50.0, 50.0001)
	if congested.Applied && !math.IsNaN(congested.FilterOffset) &&
		congested.FilterOffset == congested.MeasuredOffset && congested.MeasuredDelay > 0.05 {
		t.Error("congested sample drove the loop despite clean minimum in filter")
	}
}

func BenchmarkProcessExchange(b *testing.B) {
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 1))
	if err != nil {
		b.Fatal(err)
	}
	ex := tr.Completed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(DefaultConfig(1.0/548655270, 16))
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ex {
			c.ProcessExchange(e.Ta, e.Tf, e.Tb, e.Te)
		}
	}
}

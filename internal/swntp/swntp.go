// Package swntp implements the baseline the paper argues against: a
// classic feedback-disciplined software clock in the style of ntpd
// (RFC 1305/5905). It is deliberately the *other* design point:
//
//   - offset-centric: the clock's rate is varied as a means to adjust
//     offset, so rate performance is erratic by construction;
//   - feedback: offsets are measured with the disciplined clock itself,
//     coupling estimation and control;
//   - step/slew: offsets beyond a threshold (128 ms) step the clock,
//     producing the resets the paper reports as its key reliability
//     failure.
//
// The implementation has the canonical 8-stage clock filter (minimum
// delay sample selection), a PLL for frequency/phase tracking with a
// bounded slew rate, and the step threshold. It consumes the same raw
// exchanges as the core engine so experiments can run both side by side
// on identical traces.
//
//repro:deterministic
package swntp

import (
	"fmt"
	"math"
)

// Config parameterizes the discipline loop.
type Config struct {
	// PNominal is the assumed counter period (seconds per cycle).
	PNominal float64
	// PollPeriod is the nominal polling interval, which sets the PLL
	// time constant.
	PollPeriod float64
	// StepThreshold: measured offsets beyond this magnitude step the
	// clock instead of slewing. RFC default: 128 ms.
	StepThreshold float64
	// MaxSlewRate bounds the rate at which phase corrections are
	// amortized (dimensionless). Unix adjtime convention: 500 PPM.
	MaxSlewRate float64
	// MaxFreqAdj bounds the accumulated frequency correction. RFC
	// default: 500 PPM.
	MaxFreqAdj float64
	// PLLTimeConstant scales loop gain; larger is slower/smoother.
	PLLTimeConstant float64
	// FilterStages is the clock filter depth. RFC: 8.
	FilterStages int
}

// DefaultConfig returns RFC-style defaults.
func DefaultConfig(pNominal, poll float64) Config {
	return Config{
		PNominal:      pNominal,
		PollPeriod:    poll,
		StepThreshold: 0.128,
		MaxSlewRate:   500e-6,
		MaxFreqAdj:    500e-6,
		// The loop time constant must be much longer than the applied
		// update interval (roughly FilterStages polls, since only
		// newest-is-minimum samples are consumed) or the PLL oscillates;
		// ntpd uses comparably long constants.
		PLLTimeConstant: 32 * poll,
		FilterStages:    8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !(c.PNominal > 0):
		return fmt.Errorf("swntp: PNominal must be positive")
	case !(c.PollPeriod > 0):
		return fmt.Errorf("swntp: PollPeriod must be positive")
	case !(c.StepThreshold > 0):
		return fmt.Errorf("swntp: StepThreshold must be positive")
	case !(c.MaxSlewRate > 0):
		return fmt.Errorf("swntp: MaxSlewRate must be positive")
	case !(c.MaxFreqAdj > 0):
		return fmt.Errorf("swntp: MaxFreqAdj must be positive")
	case !(c.PLLTimeConstant > 0):
		return fmt.Errorf("swntp: PLLTimeConstant must be positive")
	case c.FilterStages < 1:
		return fmt.Errorf("swntp: FilterStages must be >= 1")
	}
	return nil
}

// sample is one clock-filter entry.
type sample struct {
	offset float64
	delay  float64
	at     float64 // clock time when taken
}

// Update reports what one exchange did to the discipline.
type Update struct {
	// MeasuredOffset and MeasuredDelay are the standard NTP per-exchange
	// statistics computed with the disciplined clock.
	MeasuredOffset, MeasuredDelay float64
	// FilterOffset is the offset of the minimum-delay filter sample that
	// drove the loop (NaN if the filter rejected the update).
	FilterOffset float64
	// Stepped reports a clock step (reset); Applied whether the loop
	// consumed the sample at all.
	Stepped bool
	Applied bool
	// Freq is the current frequency correction.
	Freq float64
}

// Clock is the feedback-disciplined software clock.
type Clock struct {
	cfg Config

	initialized bool
	counterBase uint64
	base        float64 // clock reading at counterBase
	freq        float64 // current frequency correction (dimensionless)
	residual    float64 // pending phase correction to amortize
	lastCounter uint64

	filter []sample
	steps  int
}

// New constructs a clock; it reads 0 until the first exchange sets it.
func New(cfg Config) (*Clock, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Clock{cfg: cfg}, nil
}

// Steps returns the number of clock steps (resets) so far.
func (c *Clock) Steps() int { return c.steps }

// Freq returns the current frequency correction.
func (c *Clock) Freq() float64 { return c.freq }

// Read returns the disciplined clock's value at the given counter
// reading. Phase corrections are amortized at the bounded slew rate from
// the moment they are scheduled.
func (c *Clock) Read(counter uint64) float64 {
	if !c.initialized {
		return 0
	}
	dt := spanSeconds(c.counterBase, counter, c.cfg.PNominal)
	raw := c.base + dt*(1+c.freq)
	if c.residual == 0 {
		return raw
	}
	// Amortize the residual: consumed at MaxSlewRate from counterBase.
	avail := c.cfg.MaxSlewRate * dt
	if math.Abs(c.residual) <= avail {
		return raw + c.residual
	}
	return raw + math.Copysign(avail, c.residual)
}

// spanSeconds converts a counter span to seconds, preserving sign.
func spanSeconds(from, to uint64, p float64) float64 {
	if to >= from {
		return float64(to-from) * p
	}
	return -float64(from-to) * p
}

// rebase moves the clock origin to the given counter, folding in the
// consumed part of the residual so Read stays continuous.
func (c *Clock) rebase(counter uint64) {
	now := c.Read(counter)
	dt := spanSeconds(c.counterBase, counter, c.cfg.PNominal)
	consumed := now - (c.base + dt*(1+c.freq))
	c.residual -= consumed
	if math.Abs(c.residual) < 1e-12 {
		c.residual = 0
	}
	c.base = now
	c.counterBase = counter
}

// ProcessExchange ingests one raw exchange: host counter stamps ta, tf
// and server stamps tb, te. It computes the standard NTP offset/delay
// with the disciplined clock's own readings (the feedback design),
// pushes them through the clock filter, and adjusts the clock.
func (c *Clock) ProcessExchange(ta, tf uint64, tb, te float64) Update {
	if tf <= ta {
		return Update{}
	}
	if !c.initialized {
		// First exchange: set the clock outright from the server.
		c.initialized = true
		c.counterBase = tf
		c.base = te + spanSeconds(ta, tf, c.cfg.PNominal)/2
		c.lastCounter = tf
		return Update{Stepped: true, Applied: true}
	}

	t1 := c.Read(ta)
	t4 := c.Read(tf)
	offset := ((tb - t1) + (te - t4)) / 2
	delay := (t4 - t1) - (te - tb)
	if delay < 0 {
		delay = 0
	}
	up := Update{MeasuredOffset: offset, MeasuredDelay: delay, FilterOffset: math.NaN(), Freq: c.freq}

	// Clock filter: keep the last FilterStages samples, use the
	// minimum-delay one, and only if it is new (its offset has not been
	// used before — approximated by requiring it to be the latest
	// minimum).
	c.filter = append(c.filter, sample{offset: offset, delay: delay, at: t4})
	if len(c.filter) > c.cfg.FilterStages {
		c.filter = c.filter[1:]
	}
	best := 0
	for i, s := range c.filter {
		if s.delay < c.filter[best].delay {
			best = i
		}
	}
	sel := c.filter[best]
	if best != len(c.filter)-1 {
		// Minimum-delay sample already acted on earlier; popcorn-style
		// suppression: do nothing this round.
		return up
	}
	up.FilterOffset = sel.offset
	up.Applied = true

	c.rebase(tf)
	if math.Abs(sel.offset) > c.cfg.StepThreshold {
		// Step: the reset behaviour the paper criticizes.
		c.base += sel.offset
		c.residual = 0
		c.freq = clamp(c.freq, c.cfg.MaxFreqAdj)
		c.steps++
		c.filter = c.filter[:0]
		up.Stepped = true
		c.lastCounter = tf
		up.Freq = c.freq
		return up
	}

	// PLL: phase correction scheduled for amortized slewing, frequency
	// correction integrating the offset over the loop time constant.
	dt := spanSeconds(c.lastCounter, tf, c.cfg.PNominal)
	if dt <= 0 {
		dt = c.cfg.PollPeriod
	}
	tc := c.cfg.PLLTimeConstant
	c.residual += sel.offset / 2
	c.freq = clamp(c.freq+sel.offset*dt/(tc*tc), c.cfg.MaxFreqAdj)
	c.lastCounter = tf
	up.Freq = c.freq
	return up
}

func clamp(v, bound float64) float64 {
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}

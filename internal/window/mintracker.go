package window

// MinTracker answers sliding-window minimum queries in amortized O(1)
// per sample using a monotonic deque: the classic structure where each
// new sample evicts every pending candidate that it dominates (older
// AND not smaller), so the deque always holds the strictly increasing
// sequence of future minima, oldest (and smallest) at the front.
//
// Samples are keyed by an integer sequence number that must be pushed
// in strictly increasing order; the window's trailing edge advances via
// EvictBefore. Both edges may only move forward, which is exactly the
// discipline of the engine's r̂ and r̂_l windows: the shift window
// trails the newest packet, and the global window jumps forward at
// top-window slides and level-shift re-bases.
//
// The zero value is an empty tracker and ready to use.
type MinTracker struct {
	dq  Ring[minEntry]
	max int // largest seq pushed, for order checking

	// KeepOldestTies selects the tie policy for equal minima. The zero
	// value (false) keeps only the newest of equal values — the right
	// choice when only the minimum VALUE matters, because the newest
	// equal sample survives window eviction longest and the deque stays
	// strictly increasing. Set it to true when the IDENTITY of the
	// minimum matters and ties must resolve to the oldest sample (the
	// engine's local-rate near/far sub-windows pick the first record of
	// minimal point error, and point-error ties at exactly zero are
	// common): equal values are then all retained, at the cost of a
	// potentially longer deque. Must be set before the first Push and
	// not changed afterwards.
	KeepOldestTies bool
}

type minEntry struct {
	seq int
	val float64
}

// Push adds sample (seq, val). seq must exceed every previously pushed
// sequence number.
//
//repro:hotpath
func (m *MinTracker) Push(seq int, val float64) {
	if m.dq.Len() > 0 && seq <= m.max {
		panic("window: MinTracker samples must have increasing seq")
	}
	m.max = seq
	if m.KeepOldestTies {
		// Ties retained: the front stays the oldest minimal sample.
		for m.dq.Len() > 0 && m.dq.Back().val > val {
			m.dq.PopBack()
		}
	} else {
		// Ties evict the older entry: the newest of equal minima survives
		// longest, maximizing how long the deque can answer with it.
		for m.dq.Len() > 0 && m.dq.Back().val >= val {
			m.dq.PopBack()
		}
	}
	m.dq.PushBack(minEntry{seq: seq, val: val})
}

// EvictBefore discards every sample with sequence number < seq,
// advancing the window's trailing edge. Amortized O(1): each entry is
// evicted at most once over its lifetime.
//
//repro:hotpath
func (m *MinTracker) EvictBefore(seq int) {
	for m.dq.Len() > 0 && m.dq.Front().seq < seq {
		m.dq.PopFront()
	}
}

// Min returns the minimum value among retained samples. ok is false
// when the tracker is empty.
//
//repro:hotpath
func (m *MinTracker) Min() (val float64, ok bool) {
	if m.dq.Len() == 0 {
		return 0, false
	}
	return m.dq.Front().val, true
}

// SuffixMin returns the minimum among retained samples with sequence
// number >= seq, without evicting anything: one tracker can therefore
// serve nested windows that share their leading edge (the engine's r̂
// over the whole retained history and r̂_l over the trailing shift
// window). This works because the deque retains exactly the samples
// that are smaller than everything after them: any sample discarded at
// push time was dominated by a newer, not-larger sample, which also
// represents it in every suffix query. ok is false when no retained
// sample has sequence number >= seq.
//
// Cost is O(log n) in the deque length (a binary search for the first
// entry at or after seq; entry values increase front to back — or are
// non-decreasing under KeepOldestTies, which preserves the suffix-min
// property just the same).
//
//repro:hotpath
func (m *MinTracker) SuffixMin(seq int) (val float64, ok bool) {
	n := m.dq.Len()
	lo, hi := 0, n // invariant: entries before lo have seq < target
	for lo < hi {
		mid := (lo + hi) / 2
		if m.dq.At(mid).seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == n {
		return 0, false
	}
	return m.dq.At(lo).val, true
}

// MinSeq returns the sequence number of the sample that attains the
// current minimum. Ties resolve by the tracker's tie policy: the newest
// such sample by default, the oldest under KeepOldestTies.
//
//repro:hotpath
func (m *MinTracker) MinSeq() (seq int, ok bool) {
	if m.dq.Len() == 0 {
		return 0, false
	}
	return m.dq.Front().seq, true
}

// Len returns the number of deque entries (candidate minima), not the
// number of live samples.
//
//repro:hotpath
func (m *MinTracker) Len() int { return m.dq.Len() }

// Reset discards all state.
func (m *MinTracker) Reset() {
	m.dq.DropFront(m.dq.Len())
	m.max = 0
}

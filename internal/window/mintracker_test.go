package window

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMinTrackerBasics(t *testing.T) {
	var m MinTracker
	if _, ok := m.Min(); ok {
		t.Error("empty tracker reported a minimum")
	}
	m.Push(0, 5)
	m.Push(1, 3)
	m.Push(2, 4)
	if v, _ := m.Min(); v != 3 {
		t.Errorf("Min = %v, want 3", v)
	}
	if s, _ := m.MinSeq(); s != 1 {
		t.Errorf("MinSeq = %d, want 1", s)
	}
	m.EvictBefore(2) // drops seq 0 and 1
	if v, _ := m.Min(); v != 4 {
		t.Errorf("Min after evict = %v, want 4", v)
	}
	m.Reset()
	if _, ok := m.Min(); ok {
		t.Error("reset tracker reported a minimum")
	}
	m.Push(0, 1) // seq may restart after Reset
	if v, _ := m.Min(); v != 1 {
		t.Errorf("Min after reset+push = %v", v)
	}
}

func TestMinTrackerTies(t *testing.T) {
	var m MinTracker
	m.Push(0, 2)
	m.Push(1, 2)
	m.Push(2, 2)
	// The newest of equal minima must survive: evicting everything
	// before seq 2 must keep the minimum available.
	m.EvictBefore(2)
	if v, ok := m.Min(); !ok || v != 2 {
		t.Errorf("Min after tie eviction = %v, %v", v, ok)
	}
	if s, _ := m.MinSeq(); s != 2 {
		t.Errorf("MinSeq = %d, want 2 (newest tie)", s)
	}
}

func TestMinTrackerKeepOldestTies(t *testing.T) {
	m := MinTracker{KeepOldestTies: true}
	m.Push(0, 2)
	m.Push(1, 2)
	m.Push(2, 2)
	// All equal minima are retained; the front is the oldest one.
	if s, _ := m.MinSeq(); s != 0 {
		t.Errorf("MinSeq = %d, want 0 (oldest tie)", s)
	}
	m.EvictBefore(1)
	if s, _ := m.MinSeq(); s != 1 {
		t.Errorf("MinSeq after evict = %d, want 1", s)
	}
	m.Push(3, 1)
	if s, _ := m.MinSeq(); s != 3 {
		t.Errorf("MinSeq after smaller push = %d, want 3", s)
	}
	m.Push(4, 1) // tie with the new minimum: the older must keep winning
	if s, _ := m.MinSeq(); s != 3 {
		t.Errorf("MinSeq after tied push = %d, want 3", s)
	}
}

// TestMinTrackerKeepOldestTiesAgainstNaive: with the oldest-tie policy,
// MinSeq must match the FIRST index attaining the window minimum — the
// selection rule of the engine's local-rate near/far sub-window scans.
func TestMinTrackerKeepOldestTiesAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const n, w = 500, 29
		vals := make([]float64, n)
		for i := range vals {
			// Coarse quantization makes ties frequent.
			vals[i] = float64(int(src.Float64() * 8))
		}
		m := MinTracker{KeepOldestTies: true}
		for i := 0; i < n; i++ {
			m.Push(i, vals[i])
			m.EvictBefore(i - w + 1)
			naiveVal, naiveSeq := math.Inf(1), -1
			for j := maxInt(0, i-w+1); j <= i; j++ {
				if vals[j] < naiveVal {
					naiveVal, naiveSeq = vals[j], j
				}
			}
			gotVal, ok := m.Min()
			gotSeq, _ := m.MinSeq()
			if !ok || gotVal != naiveVal || gotSeq != naiveSeq {
				t.Logf("step %d: tracker (%v, seq %d, ok=%v), naive (%v, seq %d)",
					i, gotVal, gotSeq, ok, naiveVal, naiveSeq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinTrackerOrderPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order push did not panic")
		}
	}()
	var m MinTracker
	m.Push(5, 1)
	m.Push(5, 2)
}

// TestMinTrackerAgainstNaive: sliding a fixed-width window over random
// data, the tracker must agree with a naive full scan at every step.
func TestMinTrackerAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const n, w = 600, 37
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Normal(0, 1)
			if i > 0 && src.Bool(0.1) {
				vals[i] = vals[i-1] // occasional duplicates
			}
		}
		var m MinTracker
		for i := 0; i < n; i++ {
			m.Push(i, vals[i])
			m.EvictBefore(i - w + 1)
			naive := math.Inf(1)
			for j := maxInt(0, i-w+1); j <= i; j++ {
				if vals[j] < naive {
					naive = vals[j]
				}
			}
			if got, ok := m.Min(); !ok || got != naive {
				t.Logf("step %d: tracker %v (ok=%v), naive %v", i, got, ok, naive)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMinTrackerSuffixMin: SuffixMin must agree with a naive scan for
// every possible suffix at every step, including suffixes younger than
// the retained window (empty result) and interleaved evictions.
func TestMinTrackerSuffixMin(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const n = 300
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Exponential(1)
			if i > 0 && src.Bool(0.15) {
				vals[i] = vals[i-1]
			}
		}
		var m MinTracker
		lo := 0
		for i := 0; i < n; i++ {
			m.Push(i, vals[i])
			if src.Bool(0.05) {
				lo += int(src.Float64() * float64(i-lo+1))
				m.EvictBefore(lo)
			}
			// Probe a handful of suffixes, including out-of-range ones.
			for _, s := range []int{lo, lo + (i-lo)/2, i, i + 1, i - 3} {
				naive := math.Inf(1)
				start := maxInt(s, lo)
				for j := start; j <= i; j++ {
					naive = math.Min(naive, vals[j])
				}
				got, ok := m.SuffixMin(s)
				if math.IsInf(naive, 1) {
					if ok {
						t.Logf("step %d suffix %d: got %v, want empty", i, s, got)
						return false
					}
					continue
				}
				if !ok || got != naive {
					t.Logf("step %d suffix %d: got %v (ok=%v), want %v", i, s, got, ok, naive)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMinTrackerJumpingWindow models the engine's r̂ window: the
// trailing edge jumps forward irregularly (top-window slides, level
// shift re-bases) rather than advancing by one.
func TestMinTrackerJumpingWindow(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const n = 400
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Exponential(1)
		}
		var m MinTracker
		lo := 0
		for i := 0; i < n; i++ {
			m.Push(i, vals[i])
			if src.Bool(0.07) {
				// Jump the trailing edge forward to a random point at
				// or before the newest sample.
				lo += int(src.Float64() * float64(i-lo+1))
				m.EvictBefore(lo)
			}
			naive := math.Inf(1)
			for j := lo; j <= i; j++ {
				if vals[j] < naive {
					naive = vals[j]
				}
			}
			if got, ok := m.Min(); !ok || got != naive {
				t.Logf("step %d lo %d: tracker %v (ok=%v), naive %v", i, lo, got, ok, naive)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkMinTrackerPush(b *testing.B) {
	src := rng.New(1)
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = src.Exponential(1)
	}
	var m MinTracker
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Push(i, vals[i&(len(vals)-1)])
		m.EvictBefore(i - 1024)
		if _, ok := m.Min(); !ok {
			b.Fatal("empty")
		}
	}
}

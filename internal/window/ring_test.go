package window

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRingBasics(t *testing.T) {
	r := NewRing[int](5)
	if r.Cap() != 8 {
		t.Errorf("Cap = %d, want 8 (power of two >= 5)", r.Cap())
	}
	if r.Len() != 0 {
		t.Errorf("new ring Len = %d", r.Len())
	}
	for i := 0; i < 10; i++ {
		r.PushBack(i)
	}
	if r.Len() != 10 || r.Cap() != 16 {
		t.Errorf("Len=%d Cap=%d after growth, want 10, 16", r.Len(), r.Cap())
	}
	if *r.Front() != 0 || *r.Back() != 9 {
		t.Errorf("Front=%d Back=%d", *r.Front(), *r.Back())
	}
	for i := 0; i < 10; i++ {
		if got := *r.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	if got := r.PopFront(); got != 0 {
		t.Errorf("PopFront = %d", got)
	}
	if got := r.PopBack(); got != 9 {
		t.Errorf("PopBack = %d", got)
	}
	r.DropFront(3)
	if r.Len() != 5 || *r.Front() != 4 {
		t.Errorf("after DropFront(3): Len=%d Front=%d", r.Len(), *r.Front())
	}
}

func TestRingZeroValue(t *testing.T) {
	var r Ring[string]
	r.PushBack("a")
	r.PushBack("b")
	if r.Len() != 2 || *r.Front() != "a" || *r.Back() != "b" {
		t.Errorf("zero-value ring misbehaves: Len=%d", r.Len())
	}
}

func TestRingDropFrontBeyondLen(t *testing.T) {
	r := NewRing[int](4)
	r.PushBack(1)
	r.PushBack(2)
	r.DropFront(10)
	if r.Len() != 0 {
		t.Errorf("Len = %d after over-drop", r.Len())
	}
	r.PushBack(7)
	if *r.Front() != 7 {
		t.Errorf("push after over-drop: Front = %d", *r.Front())
	}
}

func TestRingStableBacking(t *testing.T) {
	// Once at capacity, interleaved push/drop must never reallocate:
	// the property that makes the engine's steady state allocation-free.
	r := NewRing[int](16)
	for i := 0; i < 16; i++ {
		r.PushBack(i)
	}
	p := r.At(0)
	for i := 16; i < 1000; i++ {
		r.DropFront(1)
		r.PushBack(i)
		if r.Cap() != 16 {
			t.Fatalf("capacity changed to %d at step %d", r.Cap(), i)
		}
	}
	_ = p
	if *r.Front() != 1000-16 {
		t.Errorf("Front = %d", *r.Front())
	}
}

func TestRingSlices(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 8; i++ {
		r.PushBack(i)
	}
	r.DropFront(5) // head now mid-array
	for i := 8; i < 12; i++ {
		r.PushBack(i) // wraps
	}
	// Logical content: 5..11.
	collect := func(i, j int) []int {
		a, b := r.Slices(i, j)
		return append(append([]int{}, a...), b...)
	}
	got := collect(0, r.Len())
	for k, v := range got {
		if v != 5+k {
			t.Fatalf("Slices full: got[%d] = %d, want %d", k, v, 5+k)
		}
	}
	if sub := collect(2, 6); len(sub) != 4 || sub[0] != 7 || sub[3] != 10 {
		t.Errorf("Slices(2,6) = %v", sub)
	}
	if a, b := r.Slices(3, 3); a != nil || b != nil {
		t.Error("empty range returned non-nil slices")
	}
}

func TestRingPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	var r Ring[int]
	expectPanic("PopFront empty", func() { r.PopFront() })
	expectPanic("PopBack empty", func() { r.PopBack() })
	expectPanic("At empty", func() { r.At(0) })
	r.PushBack(1)
	expectPanic("At negative", func() { r.At(-1) })
	expectPanic("Slices bad range", func() { r.Slices(1, 0) })
	expectPanic("DropFront negative", func() { r.DropFront(-1) })
}

// TestRingModel drives a ring and a plain-slice model with the same
// random operation sequence and requires identical observable state.
func TestRingModel(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var r Ring[int]
		var model []int
		next := 0
		for op := 0; op < 500; op++ {
			switch {
			case src.Bool(0.5) || len(model) == 0:
				r.PushBack(next)
				model = append(model, next)
				next++
			case src.Bool(0.3):
				k := int(src.Float64() * float64(len(model)+1))
				r.DropFront(k)
				if k > len(model) {
					k = len(model)
				}
				model = model[k:]
			case src.Bool(0.5):
				if got := r.PopFront(); got != model[0] {
					t.Logf("PopFront = %d, model %d", got, model[0])
					return false
				}
				model = model[1:]
			default:
				if got := r.PopBack(); got != model[len(model)-1] {
					t.Logf("PopBack = %d, model %d", got, model[len(model)-1])
					return false
				}
				model = model[:len(model)-1]
			}
			if r.Len() != len(model) {
				t.Logf("Len = %d, model %d", r.Len(), len(model))
				return false
			}
			for i := range model {
				if *r.At(i) != model[i] {
					t.Logf("At(%d) = %d, model %d", i, *r.At(i), model[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

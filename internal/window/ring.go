// Package window provides the constant-time data structures behind the
// engine's sliding-window maintenance: a power-of-two ring buffer for
// packet history and a monotonic-deque minimum tracker.
//
// The synchronization algorithms of the paper are windowed throughout —
// the top history window T, the level-shift window T_s, the offset
// window τ′ — and a naive implementation re-scans or re-copies whole
// windows on every packet. The structures here make every per-packet
// operation amortized O(1): the ring buffer slides by advancing its
// head (no copy, stable backing array once grown), and the minimum
// tracker answers sliding-window minima by maintaining the classic
// monotonic deque of candidate minima.
//
//repro:deterministic
package window

// Ring is a growable power-of-two ring buffer (double-ended queue).
// Elements are addressed by logical position: position 0 is the oldest
// retained element. Pushes and pops at either end are amortized O(1);
// the backing array is stable between grows, so steady-state operation
// performs no allocation.
//
// The zero value is an empty ring and ready to use.
type Ring[T any] struct {
	buf  []T // len(buf) is zero or a power of two
	head int // physical index of logical position 0
	n    int // number of elements
}

// NewRing returns a ring with capacity for at least capHint elements
// (rounded up to a power of two), avoiding growth reallocations when
// the final size is known up front.
func NewRing[T any](capHint int) *Ring[T] {
	r := &Ring[T]{}
	if capHint > 0 {
		r.buf = make([]T, ceilPow2(capHint))
	}
	return r
}

// ceilPow2 returns the smallest power of two >= v (and at least 2).
func ceilPow2(v int) int {
	p := 2
	for p < v {
		p <<= 1
	}
	return p
}

// Len returns the number of elements held.
//
//repro:hotpath
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity of the backing array.
//
//repro:hotpath
func (r *Ring[T]) Cap() int { return len(r.buf) }

// At returns a pointer to the element at logical position i (0 is the
// oldest). The pointer stays valid until the ring grows or the slot is
// popped and overwritten by a later push.
//
//repro:hotpath
func (r *Ring[T]) At(i int) *T {
	if i < 0 || i >= r.n {
		panic("window: ring index out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Front returns a pointer to the oldest element.
//
//repro:hotpath
func (r *Ring[T]) Front() *T { return r.At(0) }

// Back returns a pointer to the newest element.
//
//repro:hotpath
func (r *Ring[T]) Back() *T { return r.At(r.n - 1) }

// PushBack appends v as the newest element, growing if full.
//
//repro:hotpath
func (r *Ring[T]) PushBack(v T) {
	*r.PushSlot() = v
}

// PushSlot appends a new (stale-valued) element and returns a pointer
// to it, letting callers construct large elements in place instead of
// copying them through a call argument. The pointer obeys the same
// validity rules as At.
//
//repro:hotpath
func (r *Ring[T]) PushSlot() *T {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := (r.head + r.n) & (len(r.buf) - 1)
	r.n++
	return &r.buf[i]
}

// PopFront removes and returns the oldest element.
//
//repro:hotpath
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("window: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references held by T
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// PopBack removes and returns the newest element.
//
//repro:hotpath
func (r *Ring[T]) PopBack() T {
	if r.n == 0 {
		panic("window: PopBack on empty ring")
	}
	var zero T
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	v := r.buf[i]
	r.buf[i] = zero
	r.n--
	return v
}

// DropFront discards the k oldest elements in O(k) slot clears but with
// no copying or reallocation: the window slide of the engine. k larger
// than Len empties the ring; negative k panics.
//
//repro:hotpath
func (r *Ring[T]) DropFront(k int) {
	if k < 0 {
		panic("window: DropFront with negative count")
	}
	if k >= r.n {
		k = r.n
	}
	var zero T
	for i := 0; i < k; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head = (r.head + k) & (len(r.buf) - 1)
	r.n -= k
	if r.n == 0 {
		r.head = 0
	}
}

// Slices returns the logical range [i, j) as at most two contiguous
// sub-slices of the backing array (the range may wrap around the
// physical end). Iterating the returned slices directly lets hot loops
// avoid the per-element index masking of At.
//
//repro:hotpath
func (r *Ring[T]) Slices(i, j int) (first, second []T) {
	if i < 0 || j > r.n || i > j {
		panic("window: ring slice range out of bounds")
	}
	if i == j {
		return nil, nil
	}
	lo := (r.head + i) & (len(r.buf) - 1)
	hi := (r.head + j) & (len(r.buf) - 1)
	if lo < hi {
		return r.buf[lo:hi], nil
	}
	return r.buf[lo:], r.buf[:hi]
}

// grow doubles the capacity, copying elements into logical order so
// the head returns to physical index 0.
func (r *Ring[T]) grow() {
	newCap := 2
	if len(r.buf) > 0 {
		newCap = 2 * len(r.buf)
	}
	//repro:alloc-ok amortized doubling: one allocation per capacity doubling, and the engine pre-sizes rings so steady state never grows
	nb := make([]T, newCap)
	a, b := r.slicesAll()
	copy(nb, a)
	copy(nb[len(a):], b)
	r.buf = nb
	r.head = 0
}

// slicesAll returns the full contents as two contiguous sub-slices.
func (r *Ring[T]) slicesAll() (first, second []T) {
	if r.n == 0 {
		return nil, nil
	}
	return r.Slices(0, r.n)
}

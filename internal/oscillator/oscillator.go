// Package oscillator models the CPU oscillator that drives the TSC
// register. The paper's synchronization algorithms are built on a
// two-parameter hardware abstraction measured in its Section 3: the Simple
// Skew Model (SKM) holds up to the SKM scale tau* ~ 1000 s, and the rate
// error is bounded by 0.1 PPM over all time scales. This package provides
// a parametric oscillator whose Allan deviation reproduces those measured
// curves (Figure 3): a constant skew from nominal (~tens of PPM), slow
// deterministic temperature cycles (daily and weekly), the low-amplitude
// 100-200 minute oscillatory component observed in the machine room, and a
// small bounded random-walk wander.
//
// The oscillator exposes its exact phase (cycle count as a function of
// true time) in closed form plus a cached piecewise integral for the
// random-walk term, so that multi-month traces can be generated without
// accumulating numerical drift.
//
//repro:deterministic
package oscillator

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/timebase"
)

// Sinusoid is one deterministic periodic component of frequency wander.
type Sinusoid struct {
	AmplitudePPM float64 // peak rate deviation, PPM
	Period       float64 // seconds
	Phase        float64 // radians at t = 0
}

// TempCycle is the diurnal temperature drift cycle of a long-horizon
// scenario: a daily fundamental plus an optional second harmonic (the
// day/night asymmetry of an office or machine-room thermal load) whose
// amplitude is itself modulated on the week scale (weekday/weekend
// load). Internally it expands into closed-form sinusoids, so it
// integrates exactly like the base Sinusoids and adds no per-read cost;
// the zero value contributes nothing.
type TempCycle struct {
	// AmplitudePPM is the peak rate deviation of the daily fundamental.
	AmplitudePPM float64
	// Phase is the fundamental's phase in radians at t = 0 (which hour
	// of the day the temperature peaks).
	Phase float64
	// Harmonic2 is the fraction of the amplitude carried by the second
	// harmonic (12 h period), shaping the asymmetric heat-up/cool-down
	// profile. Typical values are 0–0.5.
	Harmonic2 float64
	// WeeklyMod is the fractional week-scale amplitude modulation in
	// [0, 1): 0.3 means the daily swing breathes ±30% over the week.
	WeeklyMod float64
}

// expand returns the sinusoid terms realizing the cycle. The weekly
// modulation A·m·sin(ω_d t+φ)·sin(ω_w t) is expanded into its two
// sum/difference tones so the phase integral stays closed-form.
func (tc TempCycle) expand() []Sinusoid {
	if tc.AmplitudePPM == 0 {
		return nil
	}
	sins := []Sinusoid{{AmplitudePPM: tc.AmplitudePPM, Period: timebase.Day, Phase: tc.Phase}}
	if tc.Harmonic2 != 0 {
		sins = append(sins, Sinusoid{
			AmplitudePPM: tc.AmplitudePPM * tc.Harmonic2,
			Period:       timebase.Day / 2,
			Phase:        2 * tc.Phase,
		})
	}
	if tc.WeeklyMod != 0 {
		// sin(a)·sin(b) = [cos(a−b) − cos(a+b)]/2, cos(x) = sin(x+π/2).
		half := tc.AmplitudePPM * tc.WeeklyMod / 2
		fDiff := 1/timebase.Day - 1/timebase.Week
		fSum := 1/timebase.Day + 1/timebase.Week
		sins = append(sins,
			Sinusoid{AmplitudePPM: half, Period: 1 / fDiff, Phase: tc.Phase + math.Pi/2},
			Sinusoid{AmplitudePPM: half, Period: 1 / fSum, Phase: tc.Phase + 3*math.Pi/2},
		)
	}
	return sins
}

// Config parameterizes an oscillator.
type Config struct {
	// NominalHz is the advertised counter frequency, e.g. 548655270 for
	// the paper's 600 MHz-class host whose TSC ran near 548.655 MHz.
	NominalHz float64

	// SkewPPM is the constant deviation of the mean oscillator rate from
	// nominal (the gamma of the SKM); CPU oscillators are typically
	// within +-50 PPM of nominal.
	SkewPPM float64

	// Sinusoids are deterministic periodic wander components
	// (temperature cycles, cooling-fan oscillation, ...).
	Sinusoids []Sinusoid

	// Temp is the structured diurnal temperature drift cycle of
	// long-horizon scenarios; the zero value contributes nothing.
	Temp TempCycle

	// RandomWalkStep is the update interval of the bounded random-walk
	// frequency component, and RandomWalkStepPPM the standard deviation
	// of each increment. The walk reflects at +-RandomWalkBoundPPM so
	// the hardware's 0.1 PPM global stability bound is respected.
	RandomWalkStep     float64
	RandomWalkStepPPM  float64
	RandomWalkBoundPPM float64

	// TSC0 is the counter value at t = 0.
	TSC0 uint64
}

// Validate reports whether the configuration is physically usable.
func (c Config) Validate() error {
	if !(c.NominalHz > 0) {
		return fmt.Errorf("oscillator: NominalHz must be positive, got %v", c.NominalHz)
	}
	if c.RandomWalkStepPPM > 0 && !(c.RandomWalkStep > 0) {
		return fmt.Errorf("oscillator: RandomWalkStep must be positive when RandomWalkStepPPM > 0")
	}
	for i, s := range c.Sinusoids {
		if !(s.Period > 0) {
			return fmt.Errorf("oscillator: sinusoid %d has non-positive period %v", i, s.Period)
		}
	}
	if c.Temp.AmplitudePPM < 0 || c.Temp.Harmonic2 < 0 {
		return fmt.Errorf("oscillator: negative temperature-cycle amplitude")
	}
	if c.Temp.WeeklyMod < 0 || c.Temp.WeeklyMod >= 1 {
		return fmt.Errorf("oscillator: Temp.WeeklyMod %v outside [0,1)", c.Temp.WeeklyMod)
	}
	return nil
}

// Environment presets. The amplitudes are calibrated so the Allan
// deviation of the resulting clock error reproduces the shape of the
// paper's Figure 3: a minimum near 0.01 PPM around tau* = 1000 s and a
// rise bounded by 0.1 PPM at daily/weekly scales, with the laboratory
// (uncontrolled temperature) above the machine room at large scales and
// the machine room carrying the ~0.05 PPM 100-200 min oscillation at
// intermediate scales.

// Laboratory returns the oscillator configuration for the open-plan,
// non-airconditioned laboratory environment.
func Laboratory() Config {
	return Config{
		NominalHz: 548655270,
		SkewPPM:   48.7,
		Sinusoids: []Sinusoid{
			{AmplitudePPM: 0.05, Period: timebase.Day, Phase: 0.9},
			{AmplitudePPM: 0.015, Period: timebase.Week, Phase: 2.1},
			// Uncontrolled temperature: a strong fast component from
			// HVAC-free ambient swings, absent in the machine room.
			{AmplitudePPM: 0.038, Period: 2 * timebase.Hour, Phase: 0.3},
		},
		RandomWalkStep:     60,
		RandomWalkStepPPM:  0.004,
		RandomWalkBoundPPM: 0.03,
	}
}

// MachineRoom returns the oscillator configuration for the temperature
// controlled machine room (2 degC band), including the unexplained
// 100-200 minute oscillatory component of ~0.05 PPM amplitude described
// in Section 3.1.
func MachineRoom() Config {
	return Config{
		NominalHz: 548655270,
		SkewPPM:   48.7,
		Sinusoids: []Sinusoid{
			{AmplitudePPM: 0.018, Period: timebase.Day, Phase: 1.7},
			{AmplitudePPM: 0.007, Period: timebase.Week, Phase: 0.4},
			// The variable-period cooling oscillation; modelled with a
			// fixed 150 min period plus a second slightly detuned tone so
			// its envelope wanders as observed.
			{AmplitudePPM: 0.014, Period: 150 * timebase.Minute, Phase: 0.0},
			{AmplitudePPM: 0.007, Period: 118 * timebase.Minute, Phase: 1.2},
		},
		RandomWalkStep:     60,
		RandomWalkStepPPM:  0.0035,
		RandomWalkBoundPPM: 0.035,
	}
}

// Oscillator is a deterministic realization of a Config. It is not safe
// for concurrent use.
type Oscillator struct {
	cfg    Config
	gamma0 float64    // constant skew, dimensionless
	sins   []Sinusoid // Sinusoids plus the expanded temperature cycle

	// Random-walk frequency component, generated lazily in fixed steps.
	// rwRate[j] is the dimensionless rate offset during absolute step
	// k = rwBase+j (t in [k*h, (k+1)*h)); rwCum[j] is the integral of
	// the rate over absolute steps 0..k-1, in seconds. rwBase is the
	// absolute index of element 0: TrimBefore drops old steps so
	// streaming generation of arbitrarily long traces holds only a
	// bounded window of the walk.
	rwSrc  *rng.Source
	rwBase int
	rwRate []float64
	rwCum  []float64
}

// New constructs an Oscillator. The seed determines the random-walk
// sample path; all other components are deterministic functions of time.
func New(cfg Config, seed uint64) (*Oscillator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &Oscillator{
		cfg:    cfg,
		gamma0: timebase.FromPPM(cfg.SkewPPM),
		sins:   append(append([]Sinusoid(nil), cfg.Sinusoids...), cfg.Temp.expand()...),
		rwSrc:  rng.New(seed),
		rwRate: []float64{0},
		rwCum:  []float64{0},
	}
	return o, nil
}

// Config returns the configuration the oscillator was built from.
func (o *Oscillator) Config() Config { return o.cfg }

// NominalPeriod returns 1/NominalHz, the period a naive user would assume.
func (o *Oscillator) NominalPeriod() float64 { return 1 / o.cfg.NominalHz }

// MeanPeriod returns the true long-run mean period of the oscillator,
// i.e. the p of the SKM: 1/(f0*(1+gamma0)). Periodic and random-walk
// wander average to ~zero and do not shift the mean.
func (o *Oscillator) MeanPeriod() float64 {
	return 1 / (o.cfg.NominalHz * (1 + o.gamma0))
}

// wanderRate returns the instantaneous wander gamma_w(t) (dimensionless,
// excluding the constant skew).
func (o *Oscillator) wanderRate(t float64) float64 {
	w := 0.0
	for _, s := range o.sins {
		w += timebase.FromPPM(s.AmplitudePPM) * math.Sin(2*math.Pi*t/s.Period+s.Phase)
	}
	if o.cfg.RandomWalkStepPPM > 0 {
		k := int(t / o.cfg.RandomWalkStep)
		o.extendRW(k)
		w += o.rwRate[k-o.rwBase]
	}
	return w
}

// Rate returns the instantaneous dimensionless rate error gamma(t) of the
// oscillator relative to nominal: f(t)/f0 - 1.
func (o *Oscillator) Rate(t float64) float64 {
	return o.gamma0 + o.wanderRate(t)
}

// extendRW generates random-walk steps up to and including absolute
// index k.
func (o *Oscillator) extendRW(k int) {
	if k < 0 {
		panic("oscillator: negative time queried for random walk")
	}
	if k < o.rwBase {
		panic(fmt.Sprintf("oscillator: random-walk step %d queried after TrimBefore dropped it (base %d)", k, o.rwBase))
	}
	h := o.cfg.RandomWalkStep
	step := timebase.FromPPM(o.cfg.RandomWalkStepPPM)
	bound := timebase.FromPPM(o.cfg.RandomWalkBoundPPM)
	for o.rwBase+len(o.rwRate) <= k {
		prev := o.rwRate[len(o.rwRate)-1]
		next := prev + step*o.rwSrc.StdNormal()
		// Reflect at the stability bound so the 0.1 PPM hardware
		// characterization cannot be violated by an unlucky sample path.
		if next > bound {
			next = 2*bound - next
		}
		if next < -bound {
			next = -2*bound - next
		}
		o.rwCum = append(o.rwCum, o.rwCum[len(o.rwCum)-1]+prev*h)
		o.rwRate = append(o.rwRate, next)
	}
}

// TrimBefore drops the cached random-walk steps strictly before true
// time t, keeping the oscillator usable for all queries at or after t
// (earlier queries panic). Streaming trace generation calls it as time
// advances, so the cache — the only state that otherwise grows with
// trace duration — stays a bounded window and multi-week generation
// runs in constant memory. Values are unaffected: a trimmed oscillator
// produces bit-identical stamps for the times it can still answer.
func (o *Oscillator) TrimBefore(t float64) {
	if o.cfg.RandomWalkStepPPM <= 0 || t <= 0 {
		return
	}
	k := int(t / o.cfg.RandomWalkStep)
	// Keep at least the latest generated step: appends continue from it.
	if max := o.rwBase + len(o.rwRate) - 1; k > max {
		k = max
	}
	d := k - o.rwBase
	if d <= 0 {
		return
	}
	copy(o.rwRate, o.rwRate[d:])
	copy(o.rwCum, o.rwCum[d:])
	o.rwRate = o.rwRate[:len(o.rwRate)-d]
	o.rwCum = o.rwCum[:len(o.rwCum)-d]
	o.rwBase = k
}

// RandomWalkCacheLen reports how many random-walk steps are currently
// cached — the diagnostic the constant-memory tests watch: without
// TrimBefore it grows one step per RandomWalkStep of generated time,
// with trimming it stays a bounded window.
func (o *Oscillator) RandomWalkCacheLen() int { return len(o.rwRate) }

// wanderIntegral returns the integral of the wander rate from 0 to t, in
// seconds, computed in closed form for the sinusoids and from the cached
// cumulative sums for the random walk.
func (o *Oscillator) wanderIntegral(t float64) float64 {
	w := 0.0
	for _, s := range o.sins {
		a := timebase.FromPPM(s.AmplitudePPM)
		omega := 2 * math.Pi / s.Period
		w += a / omega * (math.Cos(s.Phase) - math.Cos(omega*t+s.Phase))
	}
	if o.cfg.RandomWalkStepPPM > 0 {
		h := o.cfg.RandomWalkStep
		k := int(t / h)
		o.extendRW(k)
		w += o.rwCum[k-o.rwBase] + o.rwRate[k-o.rwBase]*(t-float64(k)*h)
	}
	return w
}

// Phase returns the exact (fractional) cycle count elapsed since t = 0:
// Phi(t) = f0 * ((1+gamma0)*t + integral of wander). For t < 0 it
// extrapolates with the constant-skew rate only, which suffices for the
// small negative excursions used in tests.
func (o *Oscillator) Phase(t float64) float64 {
	if t < 0 {
		return o.cfg.NominalHz * (1 + o.gamma0) * t
	}
	return o.cfg.NominalHz * ((1+o.gamma0)*t + o.wanderIntegral(t))
}

// ReadTSC returns the counter value at true time t, i.e. the hardware
// register read an application would perform.
func (o *Oscillator) ReadTSC(t float64) uint64 {
	ph := o.Phase(t)
	if ph < 0 {
		panic(fmt.Sprintf("oscillator: counter read before origin (t=%v)", t))
	}
	return o.cfg.TSC0 + uint64(ph)
}

// ElapsedSeconds returns the exact true-time duration corresponding to
// the counter interval [from, to] by inverting the phase function with a
// few Newton steps. Used by tests and by the DAG reference to translate
// counter spans without assuming the SKM.
func (o *Oscillator) ElapsedSeconds(fromT, dCycles float64) float64 {
	// Initial guess with the mean rate, then refine: solve
	// Phase(fromT + dt) - Phase(fromT) = dCycles.
	base := o.Phase(fromT)
	dt := dCycles * o.MeanPeriod()
	for i := 0; i < 4; i++ {
		f := o.Phase(fromT+dt) - base - dCycles
		rate := o.cfg.NominalHz * (1 + o.Rate(fromT+dt))
		dt -= f / rate
	}
	return dt
}

// AverageRateError returns the mean dimensionless rate error over
// [t1, t2] relative to nominal, computed exactly from the phase. This is
// the reference value that per-interval rate estimators are judged
// against (the y_tau(t) of equation (4), with the clock being the raw
// counter scaled by the nominal period).
func (o *Oscillator) AverageRateError(t1, t2 float64) float64 {
	if t2 <= t1 {
		panic("oscillator: AverageRateError needs t2 > t1")
	}
	return (o.Phase(t2)-o.Phase(t1))/(o.cfg.NominalHz*(t2-t1)) - 1
}

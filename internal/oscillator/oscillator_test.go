package oscillator

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/timebase"
)

func mustNew(t *testing.T, cfg Config, seed uint64) *Oscillator {
	t.Helper()
	o, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config should fail validation")
	}
	bad := Laboratory()
	bad.Sinusoids = append(bad.Sinusoids, Sinusoid{AmplitudePPM: 1, Period: 0})
	if err := bad.Validate(); err == nil {
		t.Error("zero-period sinusoid should fail validation")
	}
	bad2 := Laboratory()
	bad2.RandomWalkStep = 0
	if err := bad2.Validate(); err == nil {
		t.Error("RW without step should fail validation")
	}
	if err := Laboratory().Validate(); err != nil {
		t.Errorf("Laboratory() invalid: %v", err)
	}
	if err := MachineRoom().Validate(); err != nil {
		t.Errorf("MachineRoom() invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := mustNew(t, MachineRoom(), 99)
	b := mustNew(t, MachineRoom(), 99)
	for _, tt := range []float64{0, 1, 16, 1000, 86400, 6 * 86400} {
		if a.ReadTSC(tt) != b.ReadTSC(tt) {
			t.Fatalf("same-seed oscillators diverge at t=%v", tt)
		}
	}
}

func TestSeedChangesPath(t *testing.T) {
	a := mustNew(t, MachineRoom(), 1)
	b := mustNew(t, MachineRoom(), 2)
	diff := false
	for _, tt := range []float64{1000, 10000, 100000} {
		if a.ReadTSC(tt) != b.ReadTSC(tt) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical counter paths")
	}
}

func TestPhaseMonotonic(t *testing.T) {
	o := mustNew(t, Laboratory(), 5)
	f := func(raw []float64) bool {
		ts := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				ts = append(ts, math.Mod(math.Abs(v), timebase.Week))
			}
		}
		sort.Float64s(ts)
		prevT, prevPh := -1.0, math.Inf(-1)
		for _, tt := range ts {
			ph := o.Phase(tt)
			if tt > prevT && ph < prevPh {
				return false
			}
			if tt > prevT+1e-6 && ph <= prevPh {
				return false // strictly increasing away from ties
			}
			prevT, prevPh = tt, ph
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadTSCMonotonic(t *testing.T) {
	o := mustNew(t, MachineRoom(), 7)
	prev := o.ReadTSC(0)
	for tt := 1.0; tt < 2*86400; tt += 61.7 {
		cur := o.ReadTSC(tt)
		if cur <= prev {
			t.Fatalf("counter not monotonic at t=%v: %d <= %d", tt, cur, prev)
		}
		prev = cur
	}
}

func TestMeanPeriod(t *testing.T) {
	cfg := MachineRoom()
	o := mustNew(t, cfg, 1)
	nom := 1 / cfg.NominalHz
	got := o.MeanPeriod()
	// The mean period is exactly 1/(1+gamma0) relative to nominal.
	wantRate := 1/(1+timebase.FromPPM(cfg.SkewPPM)) - 1
	gotRate := got/nom - 1
	if math.Abs(gotRate-wantRate) > 1e-12 {
		t.Errorf("mean period rate offset = %v, want %v", gotRate, wantRate)
	}
}

func TestAverageRateErrorNearSkew(t *testing.T) {
	for name, cfg := range map[string]Config{"lab": Laboratory(), "mr": MachineRoom()} {
		o := mustNew(t, cfg, 11)
		got := timebase.PPM(o.AverageRateError(0, timebase.Week))
		if math.Abs(got-cfg.SkewPPM) > 0.1 {
			t.Errorf("%s: weekly mean rate error = %v PPM, want %v +- 0.1", name, got, cfg.SkewPPM)
		}
	}
}

func TestStabilityCone(t *testing.T) {
	// Figure 2 of the paper: offset variations of the detrended clock
	// always fall within the +-0.1 PPM cone. Equivalently the average
	// rate error over [t0, t] relative to the long-run mean stays within
	// 0.1 PPM for every interval longer than tau*.
	for name, cfg := range map[string]Config{"lab": Laboratory(), "mr": MachineRoom()} {
		o := mustNew(t, cfg, 3)
		mean := o.AverageRateError(0, 2*timebase.Week)
		for _, span := range []float64{1000, 10000, timebase.Day, timebase.Week} {
			for t0 := 0.0; t0+span <= 2*timebase.Week; t0 += 2 * timebase.Week / 7 {
				dev := timebase.PPM(o.AverageRateError(t0, t0+span) - mean)
				if math.Abs(dev) > 0.1 {
					t.Errorf("%s: rate over [%v,%v] deviates %v PPM from mean (>0.1)",
						name, t0, t0+span, dev)
				}
			}
		}
	}
}

func TestRandomWalkBounded(t *testing.T) {
	cfg := Laboratory()
	o := mustNew(t, cfg, 17)
	o.extendRW(int(4 * timebase.Week / cfg.RandomWalkStep))
	bound := timebase.FromPPM(cfg.RandomWalkBoundPPM) * (1 + 1e-12)
	for k, v := range o.rwRate {
		if math.Abs(v) > bound {
			t.Fatalf("random walk escaped bound at step %d: %v", k, v)
		}
	}
}

func TestPhaseContinuityAtRWSteps(t *testing.T) {
	cfg := MachineRoom()
	o := mustNew(t, cfg, 23)
	h := cfg.RandomWalkStep
	for k := 1; k <= 200; k++ {
		tt := float64(k) * h
		before := o.Phase(tt - 1e-7)
		after := o.Phase(tt + 1e-7)
		// 0.2 µs of true time at ~548 MHz is ~110 cycles.
		if d := after - before; d < 0 || d > 1000 {
			t.Fatalf("phase discontinuity at RW step %d: delta=%v cycles", k, d)
		}
	}
}

func TestElapsedSecondsInvertsPhase(t *testing.T) {
	o := mustNew(t, Laboratory(), 29)
	for _, from := range []float64{0, 123.4, 90000} {
		for _, dt := range []float64{1e-3, 1, 1000, timebase.Day} {
			dCycles := o.Phase(from+dt) - o.Phase(from)
			got := o.ElapsedSeconds(from, dCycles)
			if math.Abs(got-dt) > 1e-9*(1+dt) {
				t.Errorf("ElapsedSeconds(%v, phase(%v)) = %v", from, dt, got)
			}
		}
	}
}

func TestRateWithinPhysicalRange(t *testing.T) {
	o := mustNew(t, Laboratory(), 31)
	for tt := 0.0; tt < timebase.Week; tt += 977 {
		ppm := timebase.PPM(o.Rate(tt))
		if math.Abs(ppm-o.cfg.SkewPPM) > 0.5 {
			t.Fatalf("instantaneous rate %v PPM too far from skew %v", ppm, o.cfg.SkewPPM)
		}
	}
}

func TestTSC0Offset(t *testing.T) {
	cfg := MachineRoom()
	cfg.TSC0 = 1 << 40
	o := mustNew(t, cfg, 1)
	if got := o.ReadTSC(0); got != cfg.TSC0 {
		t.Errorf("ReadTSC(0) = %d, want TSC0 = %d", got, cfg.TSC0)
	}
}

func TestNegativeReadPanics(t *testing.T) {
	o := mustNew(t, MachineRoom(), 1)
	defer func() {
		if recover() == nil {
			t.Error("ReadTSC before origin did not panic")
		}
	}()
	o.ReadTSC(-5)
}

func BenchmarkReadTSC(b *testing.B) {
	o, err := New(MachineRoom(), 1)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += o.ReadTSC(float64(i%100000) * 0.9)
	}
	_ = sink
}

package tscclock

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// timeoutErr is a net.Error whose Timeout() is true: what a lost UDP
// exchange surfaces through the read deadline.
type timeoutErr struct{ msg string }

func (e *timeoutErr) Error() string   { return e.msg }
func (e *timeoutErr) Timeout() bool   { return true }
func (e *timeoutErr) Temporary() bool { return true }

func errTimeout(msg string) error { return &timeoutErr{msg: msg} }

func TestPollerDefaults(t *testing.T) {
	p := NewPoller(0, 0)
	if p.Interval() != 16*time.Second {
		t.Errorf("default min = %v", p.Interval())
	}
	p2 := NewPoller(time.Minute, time.Second) // max < min
	if p2.Observe(Status{}, nil) < time.Minute {
		t.Error("max not clamped to min")
	}
}

func TestPollerBackoff(t *testing.T) {
	p := NewPoller(16*time.Second, 256*time.Second)
	quiet := Status{Warmup: false}
	intervals := []time.Duration{}
	for i := 0; i < 8; i++ {
		intervals = append(intervals, p.Observe(quiet, nil))
	}
	want := []time.Duration{32, 64, 128, 256, 256, 256, 256, 256}
	for i, w := range want {
		if intervals[i] != w*time.Second {
			t.Errorf("step %d: interval %v, want %vs", i, intervals[i], w)
		}
	}
}

func TestPollerFastDuringWarmup(t *testing.T) {
	p := NewPoller(16*time.Second, 256*time.Second)
	if got := p.Observe(Status{Warmup: true}, nil); got != 16*time.Second {
		t.Errorf("warmup interval %v", got)
	}
}

func TestPollerResetsOnTrouble(t *testing.T) {
	p := NewPoller(16*time.Second, 1024*time.Second)
	for i := 0; i < 6; i++ {
		p.Observe(Status{}, nil)
	}
	if p.Interval() <= 16*time.Second {
		t.Fatal("backoff did not progress")
	}
	for _, st := range []Status{
		{UpwardShiftDetected: true},
		{OffsetSanity: true},
		{PoorQuality: true},
	} {
		p2 := *p
		if got := p2.Observe(st, nil); got != 16*time.Second {
			t.Errorf("trouble %+v: interval %v, want min", st, got)
		}
	}
	if got := p.Observe(Status{}, errTimeout("timeout")); got != 16*time.Second {
		t.Errorf("exchange error: interval %v, want min", got)
	}
}

// TestPollerDeadServer: persistent exchange errors must not pin the
// poller at the fast floor forever. The first failFastRetries failures
// retry at min (a lone loss is worth chasing); after that the interval
// doubles toward max and stays there while the server remains dead.
func TestPollerDeadServer(t *testing.T) {
	p := NewPoller(16*time.Second, 256*time.Second)
	dead := errTimeout("i/o timeout")
	want := []time.Duration{16, 16, 32, 64, 128, 256, 256, 256}
	for i, w := range want {
		if got := p.Observe(Status{}, dead); got != w*time.Second {
			t.Errorf("failure %d: interval %v, want %vs", i+1, got, w)
		}
	}
	// Decommissioned server: the steady state is max, not min.
	for i := 0; i < 20; i++ {
		if got := p.Observe(Status{}, dead); got != 256*time.Second {
			t.Fatalf("persistent failure %d: interval %v, want max", i, got)
		}
	}
	// The server comes back: one success resets the failure budget and
	// polling resumes the quiet-good climb from max.
	if got := p.Observe(Status{}, nil); got != 256*time.Second {
		t.Errorf("recovery: interval %v, want max (already there)", got)
	}
	// The next lone error is treated as fresh packet loss again.
	if got := p.Observe(Status{}, dead); got != 16*time.Second {
		t.Errorf("first error after recovery: interval %v, want min", got)
	}
}

// TestPollerFlappyServer: isolated losses interleaved with successes
// never trip the failure backoff — every error retries at min, every
// success resumes the climb, and the consecutive-failure count resets
// so flapping cannot accumulate into a spurious back-off.
func TestPollerFlappyServer(t *testing.T) {
	p := NewPoller(16*time.Second, 1024*time.Second)
	flap := errTimeout("lost")
	steps := []struct {
		err  error
		want time.Duration
	}{
		{flap, 16 * time.Second}, // 1st consecutive failure: fast retry
		{nil, 32 * time.Second},  // success: climb resumes, count resets
		{flap, 16 * time.Second}, // 1st again, not 2nd
		{flap, 16 * time.Second}, // 2nd consecutive: still fast
		{nil, 32 * time.Second},  // reset
		{flap, 16 * time.Second}, // 1st
		{flap, 16 * time.Second}, // 2nd
		{flap, 32 * time.Second}, // 3rd consecutive: backoff begins
		{flap, 64 * time.Second}, // and compounds
		{nil, 128 * time.Second}, // success: quiet climb from where it was
		{flap, 16 * time.Second}, // counter was reset: fast retry again
	}
	for i, s := range steps {
		if got := p.Observe(Status{}, s.err); got != s.want {
			t.Errorf("step %d (err=%v): interval %v, want %v", i, s.err != nil, got, s.want)
		}
	}
}

// TestPollerTimeoutVsHardError pins the error-kind asymmetry against a
// scripted fault sequence: timeouts (packet loss) get failFastRetries
// polls at min before the exponential climb to max, while hard errors
// (resolution failure, refused, unreachable — anything that is not a
// timeout) burn the fast-retry budget immediately, because no retry
// rate recovers a structural failure.
func TestPollerTimeoutVsHardError(t *testing.T) {
	lost := errTimeout("read udp: i/o timeout")
	hard := errors.New("dial udp: no such host")

	p := NewPoller(16*time.Second, 256*time.Second)
	script := []struct {
		err  error
		want time.Duration
	}{
		{lost, 16 * time.Second},  // 1st timeout: fast retry
		{lost, 16 * time.Second},  // 2nd timeout: still fast
		{lost, 32 * time.Second},  // 3rd: backoff begins
		{lost, 64 * time.Second},  // and compounds
		{lost, 128 * time.Second}, //
		{lost, 256 * time.Second}, // pinned at max while dead
		{nil, 256 * time.Second},  // recovery: failure budget resets
		{hard, 256 * time.Second}, // hard error: no fast retry, stays backed off at max
	}
	for i, s := range script {
		if got := p.Observe(Status{}, s.err); got != s.want {
			t.Errorf("step %d: interval %v, want %v", i, got, s.want)
		}
	}

	// From a calm climb, a hard error doubles instead of dropping to
	// min — and keeps doubling, since every further failure is past the
	// fast-retry budget.
	p2 := NewPoller(16*time.Second, 256*time.Second)
	p2.Observe(Status{}, nil) // 32s
	want := []time.Duration{64 * time.Second, 128 * time.Second, 256 * time.Second}
	for i, w := range want {
		if got := p2.Observe(Status{}, hard); got != w {
			t.Errorf("hard failure %d: interval %v, want %v", i+1, got, w)
		}
	}
	// A wrapped deadline error still counts as a timeout.
	p3 := NewPoller(16*time.Second, 256*time.Second)
	p3.Observe(Status{}, nil) // 32s
	wrapped := fmt.Errorf("exchange: %w", os.ErrDeadlineExceeded)
	if got := p3.Observe(Status{}, wrapped); got != 16*time.Second {
		t.Errorf("wrapped deadline error: interval %v, want min fast retry", got)
	}
}

// TestPollerObserveTransitions walks Observe through every policy arc
// in one continuous run: warmup pinning, quiet-good doubling, the max
// clamp, a trouble reset, and the recovery climb afterwards.
func TestPollerObserveTransitions(t *testing.T) {
	p := NewPoller(16*time.Second, 128*time.Second)
	steps := []struct {
		name string
		st   Status
		err  error
		want time.Duration
	}{
		{"warmup holds min", Status{Warmup: true}, nil, 16 * time.Second},
		{"warmup again", Status{Warmup: true}, nil, 16 * time.Second},
		{"first quiet doubles", Status{}, nil, 32 * time.Second},
		{"second quiet doubles", Status{}, nil, 64 * time.Second},
		{"third quiet doubles", Status{}, nil, 128 * time.Second},
		{"clamped at max", Status{}, nil, 128 * time.Second},
		{"shift resets to min", Status{UpwardShiftDetected: true}, nil, 16 * time.Second},
		{"recovery climbs again", Status{}, nil, 32 * time.Second},
		{"server change resets to min", Status{ServerChanged: true}, nil, 16 * time.Second},
		{"climbs after server change", Status{}, nil, 32 * time.Second},
		{"exchange error resets", Status{}, errTimeout("timeout"), 16 * time.Second},
		{"poor quality pins min", Status{PoorQuality: true}, nil, 16 * time.Second},
		{"sanity pins min", Status{OffsetSanity: true}, nil, 16 * time.Second},
		{"quiet resumes from min", Status{}, nil, 32 * time.Second},
	}
	for _, s := range steps {
		if got := p.Observe(s.st, s.err); got != s.want {
			t.Errorf("%s: interval %v, want %v", s.name, got, s.want)
		}
		if p.Interval() != p.current {
			t.Errorf("%s: Interval() disagrees with state", s.name)
		}
	}
}

// TestPollerMinClamp: the interval can never leave [min, max], whatever
// sequence of outcomes is observed — including an error on the very
// first observation and degenerate min == max bounds.
func TestPollerMinClamp(t *testing.T) {
	p := NewPoller(20*time.Second, 40*time.Second)
	if got := p.Observe(Status{}, errTimeout("first poll lost")); got != 20*time.Second {
		t.Errorf("error on first observation: %v, want min", got)
	}
	outcomes := []struct {
		st  Status
		err error
	}{
		{Status{}, nil},
		{Status{Warmup: true}, nil},
		{Status{}, nil},
		{Status{}, nil},
		{Status{PoorQuality: true}, nil},
		{Status{}, errTimeout("x")},
		{Status{}, nil},
	}
	for i, o := range outcomes {
		got := p.Observe(o.st, o.err)
		if got < 20*time.Second || got > 40*time.Second {
			t.Errorf("step %d: interval %v outside [20s, 40s]", i, got)
		}
	}

	fixed := NewPoller(time.Minute, time.Minute)
	for i := 0; i < 3; i++ {
		if got := fixed.Observe(Status{}, nil); got != time.Minute {
			t.Errorf("min==max step %d: interval %v, want 1m", i, got)
		}
	}
}

func TestRunAdaptiveAgainstServer(t *testing.T) {
	addr := startServer(t)
	l, err := DialLive(LiveOptions{Server: addr.String(), Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	p := NewPoller(10*time.Millisecond, 80*time.Millisecond)
	steps := 0
	err = l.RunAdaptive(ctx, p, func(st Status, err error) {
		if err == nil {
			steps++
		}
	})
	if err != context.DeadlineExceeded {
		t.Errorf("RunAdaptive returned %v", err)
	}
	if steps < 3 {
		t.Errorf("only %d steps", steps)
	}
}

func TestServerChangedSurfaced(t *testing.T) {
	c, err := New(Options{NominalPeriod: 2e-9, PollPeriod: 16})
	if err != nil {
		t.Fatal(err)
	}
	const p = 2e-9
	counter := uint64(1000)
	serverT := 0.0
	feed := func(refid uint32) Status {
		counter += uint64(16 / p)
		serverT += 16
		rtt := 400e-6
		st, err := c.ProcessNTPExchangeFrom(counter, counter+uint64(rtt/p),
			serverT+rtt/3, serverT+rtt/3+20e-6, refid, 1)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	for i := 0; i < 5; i++ {
		if st := feed(100); st.ServerChanged {
			t.Fatal("spurious server change")
		}
	}
	if st := feed(200); !st.ServerChanged {
		t.Error("server change not surfaced")
	}
	if st := feed(200); st.ServerChanged {
		t.Error("steady new server still reported as change")
	}
}

package tscclock

import (
	"math"
	"testing"
)

// feedEnsemble sends one clean synthetic exchange with server k at true
// time now; off shifts the server's clock (a faulty server).
func feedEnsemble(t *testing.T, e *Ensemble, k int, now, off float64) EnsembleStatus {
	t.Helper()
	const p = 2e-9
	const rtt = 400e-6
	st, err := e.ProcessNTPExchange(k,
		uint64(now/p), uint64((now+rtt)/p),
		now+rtt/2+off, now+rtt/2+20e-6+off)
	if err != nil {
		t.Fatalf("server %d at %v: %v", k, now, err)
	}
	return st
}

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(EnsembleOptions{}); err == nil {
		t.Error("zero Servers accepted")
	}
	if _, err := NewEnsemble(EnsembleOptions{Servers: 2}); err == nil {
		t.Error("missing NominalPeriod accepted")
	}
}

// TestEnsembleOutvotesFaultyServer exercises the public API end to end:
// three servers, one of them 5 ms wrong, fed with a staggered schedule
// as MultiLive would. The combined clock must track the two good
// servers and report the disagreement.
func TestEnsembleOutvotesFaultyServer(t *testing.T) {
	e, err := NewEnsemble(EnsembleOptions{
		Servers: 3,
		Clock:   Options{NominalPeriod: 2e-9, PollPeriod: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	const fault = 5e-3
	var last EnsembleStatus
	now := 0.0
	for i := 0; i < 100; i++ {
		for k := 0; k < 3; k++ {
			now = float64(i)*16 + float64(k)*16/3 + 1
			off := 0.0
			if k == 2 {
				off = fault
			}
			last = feedEnsemble(t, e, k, now, off)
		}
	}
	if last.Warmup {
		t.Fatal("still in warmup after 100 rounds")
	}
	truth := now + 1
	T := uint64(truth / 2e-9)
	if got := e.AbsoluteTime(T) - truth; math.Abs(got) > 100e-6 {
		t.Errorf("combined clock error %v despite a %v faulty server", got, fault)
	}
	if last.Agreement != 2 {
		t.Errorf("Agreement = %d, want 2", last.Agreement)
	}
	// The selection stage names the faulty server outright: voted out,
	// zero selected-set membership, and an asymmetry hint that localizes
	// the ~5 ms disagreement on it.
	if last.Falsetickers != 1 {
		t.Errorf("Falsetickers = %d, want 1", last.Falsetickers)
	}
	if len(last.Selected) != 3 || !last.Selected[0] || !last.Selected[1] || last.Selected[2] {
		t.Errorf("Selected = %v, want [true true false]", last.Selected)
	}
	if len(last.AsymmetryHint) != 3 || math.Abs(last.AsymmetryHint[2]-fault) > fault/2 {
		t.Errorf("AsymmetryHint = %v, want ≈ %v on server 2", last.AsymmetryHint, fault)
	}
	if n := e.Servers(); n != 3 {
		t.Errorf("Servers = %d", n)
	}
	if got := e.Exchanges(); got != 300 {
		t.Errorf("Exchanges = %d, want 300", got)
	}
	ws := e.Weights()
	if len(ws) != 3 {
		t.Fatalf("Weights length %d", len(ws))
	}
	states := e.ServerStates()
	if len(states) != 3 || states[2].Exchanges != 100 {
		t.Errorf("ServerStates = %+v", states)
	}
	if !states[2].Falseticker || states[2].Selected {
		t.Errorf("ServerStates[2] = %+v, want falseticker", states[2])
	}
	// The combined rate is sane and Between measures with it.
	if p := e.Period(); math.Abs(p/2e-9-1) > 1e-6 {
		t.Errorf("combined period %v", p)
	}
	if d := e.Between(0, uint64(1/2e-9)); math.Abs(d-1) > 1e-6 {
		t.Errorf("Between over 1 s = %v", d)
	}
}

// TestEnsembleSelectionDisabled: the ablation switch reverts to the
// pure weighted-median combiner — no falseticker classification, every
// ready server keeps voting.
func TestEnsembleSelectionDisabled(t *testing.T) {
	e, err := NewEnsemble(EnsembleOptions{
		Servers:          3,
		Clock:            Options{NominalPeriod: 2e-9, PollPeriod: 16},
		DisableSelection: true,
		ReadmitAfter:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var last EnsembleStatus
	for i := 0; i < 100; i++ {
		for k := 0; k < 3; k++ {
			now := float64(i)*16 + float64(k)*16/3 + 1
			off := 0.0
			if k == 2 {
				off = 5e-3
			}
			last = feedEnsemble(t, e, k, now, off)
		}
	}
	if last.Falsetickers != 0 {
		t.Errorf("Falsetickers = %d with selection disabled, want 0", last.Falsetickers)
	}
	for k, st := range e.ServerStates() {
		if st.Falseticker {
			t.Errorf("server %d flagged falseticker with selection disabled", k)
		}
		if st.Weight == 0 {
			t.Errorf("server %d lost its vote with selection disabled", k)
		}
	}
}

// TestEnsembleServerChange: identity changes surface per server through
// the embedded Status, as for Clock.
func TestEnsembleServerChange(t *testing.T) {
	e, err := NewEnsemble(EnsembleOptions{
		Servers: 2,
		Clock:   Options{NominalPeriod: 2e-9, PollPeriod: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	const p = 2e-9
	const rtt = 400e-6
	feedFrom := func(k int, now float64, refid uint32) EnsembleStatus {
		st, err := e.ProcessNTPExchangeFrom(k,
			uint64(now/p), uint64((now+rtt)/p),
			now+rtt/2, now+rtt/2+20e-6, refid, 1)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	for i := 0; i < 5; i++ {
		now := float64(i)*16 + 1
		if st := feedFrom(0, now, 100); st.ServerChanged {
			t.Fatal("spurious server change")
		}
		feedFrom(1, now+8, 200)
	}
	if st := feedFrom(0, 100*16, 300); !st.ServerChanged {
		t.Error("server change not surfaced")
	}
}

package tscclock

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (running the experiment in Quick mode and failing
// if any shape check regresses), ablation benchmarks for the design
// choices DESIGN.md calls out, and micro-benchmarks of the pipeline.
//
// Regenerate everything at paper scale with:
//
//	go run ./cmd/experiments -run all
//
// and at benchmark scale with:
//
//	go test -bench . -benchmem

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timebase"
)

// benchExperiment runs one experiment per iteration and asserts its
// shape checks, so `go test -bench .` doubles as a regression harness.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if !c.Pass {
				b.Fatalf("check %q failed: want %s, got %s", c.Name, c.Want, c.Got)
			}
		}
	}
}

func BenchmarkTable1(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFig2(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9a(b *testing.B)         { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)         { benchExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)         { benchExperiment(b, "fig9c") }
func BenchmarkFig10(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B)        { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B)        { benchExperiment(b, "fig11b") }
func BenchmarkFig11c(b *testing.B)        { benchExperiment(b, "fig11c") }
func BenchmarkFig11d(b *testing.B)        { benchExperiment(b, "fig11d") }
func BenchmarkFig12(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkBaselineSWNTP(b *testing.B) { benchExperiment(b, "baseline") }

// BenchmarkEnsembleFault runs the multi-server faulty-server experiment
// (the fan-out throughput benchmark is BenchmarkEnsemble in
// internal/ensemble).
func BenchmarkEnsembleFault(b *testing.B) { benchExperiment(b, "ensemble") }

// BenchmarkLongRun runs the multi-week streaming experiment in quick
// mode, like every other experiment benchmark.
func BenchmarkLongRun(b *testing.B) { benchExperiment(b, "longrun") }

// BenchmarkLongRunDays is the memory-ceiling benchmark of the streaming
// pipeline: the longrun experiment end to end (pull-based generation →
// engine → online statistics → windowed series) at increasing trace
// lengths, reporting throughput and the sampled peak-heap watermark.
// The paper-scale claim under test: wall-clock grows with the packet
// count, peak heap does not (it plateaus at the fixed accumulator
// ceilings plus GC overshoot — see PERF.md for recorded curves).
func BenchmarkLongRunDays(b *testing.B) {
	for _, days := range []float64{1, 7, 21, 63} {
		b.Run(fmt.Sprintf("days=%g", days), func(b *testing.B) {
			peak := uint64(0)
			packets := 0.0
			for i := 0; i < b.N; i++ {
				rep, err := experiments.Run("longrun", experiments.Options{LongRunDays: days})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range rep.Checks {
					if !c.Pass {
						b.Fatalf("check %q failed: want %s, got %s", c.Name, c.Want, c.Got)
					}
				}
				if rep.PeakHeap > peak {
					peak = rep.PeakHeap
				}
				packets += days * timebase.Day / 16
			}
			b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/packets, "ns/packet")
		})
	}
}

// --- ablation benchmarks ---
//
// Each ablation runs the engine over the same trace with one design
// element changed and reports the resulting accuracy as custom metrics
// (median and 99th-percentile absolute offset error, in µs), so the
// contribution of each mechanism is measurable.

func ablationTrace(b *testing.B, mutate func(*sim.Scenario)) *sim.Trace {
	b.Helper()
	sc := sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 424242)
	if mutate != nil {
		mutate(&sc)
	}
	tr, err := sim.Generate(sc)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// asymmetryAt returns the true path asymmetry Δ in force at time t,
// honoring level shifts. The offset algorithm's best-achievable target
// is −Δ(t)/2 (the midpoint-alignment ambiguity of equation 18), so
// ablations are scored against that target rather than against zero —
// otherwise an estimator that freezes before a route change would be
// rewarded for failing to track.
func asymmetryAt(sc sim.Scenario, t float64) float64 {
	minOf := func(cfg netem.PathConfig) float64 {
		m := cfg.MinDelay
		for _, s := range cfg.Shifts {
			if t >= s.At && (s.Duration <= 0 || t < s.At+s.Duration) {
				m += s.Delta
			}
		}
		if m < 0 {
			m = 0
		}
		return m
	}
	return minOf(sc.Server.Forward) - minOf(sc.Server.Backward)
}

func runAblation(b *testing.B, tr *sim.Trace, cfg core.Config) {
	b.Helper()
	var medUs, p99Us float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewSync(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var absErrs []float64
		for _, e := range tr.Completed() {
			res, err := s.Process(core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te})
			if err != nil {
				b.Fatal(err)
			}
			if e.TrueTf > timebase.Hour {
				thetaG := float64(e.Tf)*res.ClockP + res.ClockC - e.Tg
				target := -asymmetryAt(tr.Scenario, e.TrueTf) / 2
				absErrs = append(absErrs, math.Abs(res.ThetaHat-thetaG-target))
			}
		}
		sorted := stats.NewSorted(absErrs) // one sort for both quantiles
		medUs = sorted.Median() / timebase.Microsecond
		p99Us = sorted.Percentile(99) / timebase.Microsecond
	}
	b.ReportMetric(medUs, "median_us")
	b.ReportMetric(p99Us, "p99_us")
}

func ablationCfg() core.Config {
	return core.DefaultConfig(1.0/548655270, 16)
}

// BenchmarkAblationDefault is the reference point: the full algorithm.
func BenchmarkAblationDefault(b *testing.B) {
	runAblation(b, ablationTrace(b, nil), ablationCfg())
}

// BenchmarkAblationLocalRate adds the local-rate refinement.
func BenchmarkAblationLocalRate(b *testing.B) {
	cfg := ablationCfg()
	cfg.UseLocalRate = true
	runAblation(b, ablationTrace(b, nil), cfg)
}

// BenchmarkAblationNoWeighting degrades the weighted window to a
// last-packet predictor (window of one), quantifying what the
// quality-weighted combination buys.
func BenchmarkAblationNoWeighting(b *testing.B) {
	cfg := ablationCfg()
	cfg.OffsetWindow = cfg.PollPeriod // one packet
	runAblation(b, ablationTrace(b, nil), cfg)
}

// BenchmarkAblationNoAging removes the point-error aging term.
func BenchmarkAblationNoAging(b *testing.B) {
	cfg := ablationCfg()
	cfg.AgingRate = 0
	runAblation(b, ablationTrace(b, nil), cfg)
}

// BenchmarkAblationNoShiftDetector disables upward level-shift
// detection on a trace WITH a route change: the filter then judges all
// post-shift packets as congested, degrading quality packets' supply.
func BenchmarkAblationNoShiftDetector(b *testing.B) {
	mutate := func(sc *sim.Scenario) {
		sc.Server.Forward.Shifts = []netem.Shift{{At: 8 * timebase.Hour, Delta: 0.9 * timebase.Millisecond}}
	}
	cfg := ablationCfg()
	cfg.ShiftThresholdFactor = 1e9 // never triggers
	runAblation(b, ablationTrace(b, mutate), cfg)
}

// BenchmarkAblationShiftDetector is the same route-change trace with
// the detector active, for comparison against NoShiftDetector.
func BenchmarkAblationShiftDetector(b *testing.B) {
	mutate := func(sc *sim.Scenario) {
		sc.Server.Forward.Shifts = []netem.Shift{{At: 8 * timebase.Hour, Delta: 0.9 * timebase.Millisecond}}
	}
	runAblation(b, ablationTrace(b, mutate), ablationCfg())
}

// BenchmarkAblationUserLevelStamps swaps the driver-level timestamping
// model for the noisier user-space one (Section 2.2.1: "the algorithms
// would still work, albeit with higher estimation variance").
func BenchmarkAblationUserLevelStamps(b *testing.B) {
	mutate := func(sc *sim.Scenario) { sc.Host = netem.UserLevelHostStamp() }
	cfg := ablationCfg()
	cfg.Delta = 50 * timebase.Microsecond // recalibrate δ to the stamping
	runAblation(b, ablationTrace(b, mutate), cfg)
}

// --- micro-benchmarks ---

// BenchmarkEnginePerPacket measures the steady-state cost of one
// Process call (windowed filtering included).
func BenchmarkEnginePerPacket(b *testing.B) {
	tr := ablationTrace(b, nil)
	ex := tr.Completed()
	s, err := core.NewSync(ablationCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ex[i%len(ex)]
		if i > 0 && i%len(ex) == 0 {
			b.StopTimer()
			s, err = core.NewSync(ablationCfg())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := s.Process(core.Input{Ta: e.Ta, Tf: e.Tf, Tb: e.Tb, Te: e.Te}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadParallel measures the lock-free read path under reader
// concurrency while a writer goroutine continuously processes packets:
// the workload the published-readout refactor exists for. Readers run
// with b.RunParallel (one goroutine per GOMAXPROCS unit); ns/op is the
// per-read latency, which must not collapse as GOMAXPROCS grows (no
// reader/writer serialization — compare `-cpu 1,2,4` runs; numbers in
// PERF.md).
func BenchmarkReadParallel(b *testing.B) {
	// benchIn generates an endless monotone stream of clean exchanges
	// (16 s spacing, 400 µs RTT on a 500 MHz counter), so the writer
	// goroutines below never exhaust a trace mid-measurement — the
	// contention must last the whole benchmark window.
	const benchP = 2e-9
	benchIn := func(i int) core.Input {
		now := float64(i)*16 + 1
		const rtt = 400e-6
		return core.Input{
			Ta: uint64(now / benchP), Tf: uint64((now + rtt) / benchP),
			Tb: now + rtt/2, Te: now + rtt/2 + 20e-6,
		}
	}
	b.Run("Clock", func(b *testing.B) {
		c, err := New(Options{NominalPeriod: benchP, PollPeriod: 16})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2048; i++ { // calibrate first
			in := benchIn(i)
			if _, err := c.ProcessNTPExchange(in.Ta, in.Tf, in.Tb, in.Te); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() { // the writer races every reader, for the whole window
			defer close(done)
			for i := 2048; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				in := benchIn(i)
				if _, err := c.ProcessNTPExchange(in.Ta, in.Tf, in.Tb, in.Te); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		T := benchIn(2047).Tf
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var sink float64
			i := uint64(0)
			for pb.Next() {
				i++
				sink += c.AbsoluteTime(T + i)
			}
			_ = sink
		})
		b.StopTimer()
		close(stop)
		<-done
	})
	// MutexBaseline is the pre-refactor read path — every read takes
	// the lock the writer holds during Process — reconstructed here so
	// the serialization cost the published readout removed stays
	// measurable.
	b.Run("MutexBaseline", func(b *testing.B) {
		s, err := core.NewSync(core.DefaultConfig(benchP, 16))
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		for i := 0; i < 2048; i++ {
			if _, err := s.Process(benchIn(i)); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 2048; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				_, err := s.Process(benchIn(i))
				mu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
			}
		}()
		T := benchIn(2047).Tf
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var sink float64
			i := uint64(0)
			for pb.Next() {
				i++
				mu.Lock()
				sink += s.AbsoluteTime(T + i)
				mu.Unlock()
			}
			_ = sink
		})
		b.StopTimer()
		close(stop)
		<-done
	})
	b.Run("Ensemble", func(b *testing.B) {
		const servers = 3
		e, err := NewEnsemble(EnsembleOptions{
			Servers: servers,
			Clock:   Options{NominalPeriod: 2e-9, PollPeriod: 16},
		})
		if err != nil {
			b.Fatal(err)
		}
		const p = 2e-9
		const rtt = 400e-6
		feed := func(i int) error {
			for k := 0; k < servers; k++ {
				now := float64(i)*16 + float64(k)*16/float64(servers) + 1
				if _, err := e.ProcessNTPExchange(k,
					uint64(now/p), uint64((now+rtt)/p),
					now+rtt/2, now+rtt/2+20e-6); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 100; i++ { // calibrate first
			if err := feed(i); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() { // the writer races every reader
			defer close(done)
			for i := 100; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := feed(i); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		T := uint64(100 * 16 / p)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var sink float64
			i := uint64(0)
			for pb.Next() {
				i++
				sink += e.AbsoluteTime(T + i)
			}
			_ = sink
		})
		b.StopTimer()
		close(stop)
		<-done
	})
}

// BenchmarkClockReads measures the absolute-clock read path.
func BenchmarkClockReads(b *testing.B) {
	c, err := New(Options{NominalPeriod: 1e-9, PollPeriod: 16})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.ProcessNTPExchange(1000, 2_000_000, 1, 1.0001); err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += c.AbsoluteTime(uint64(i) * 1000)
	}
	_ = sink
}

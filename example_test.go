package tscclock_test

import (
	"fmt"
	"log"

	tscclock "repro"
	"repro/internal/sim"
	"repro/internal/timebase"
)

// ExampleClock calibrates a clock from simulated NTP exchanges and reads
// both clocks: the difference clock for intervals, the absolute clock
// for timestamps.
func ExampleClock() {
	// Six hours of exchanges against the paper's ServerInt environment.
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, 6*timebase.Hour, 1))
	if err != nil {
		log.Fatal(err)
	}

	clock, err := tscclock.New(tscclock.Options{
		NominalPeriod: 1.0 / 548655270, // advertised counter frequency
		PollPeriod:    16,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range tr.Completed() {
		if _, err := clock.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te); err != nil {
			log.Fatal(err)
		}
	}

	// Measure a 10-second interval with the difference clock.
	c1 := tr.Osc.ReadTSC(5 * timebase.Hour)
	c2 := tr.Osc.ReadTSC(5*timebase.Hour + 10)
	span := clock.Between(c1, c2)
	fmt.Printf("10 s interval measured to within %v µs\n", int(1e6*(span-10)+0.5))

	// Read absolute time; true value is 5 h exactly.
	abs := clock.AbsoluteTime(c1)
	fmt.Printf("absolute error under 100 µs: %v\n", abs-5*timebase.Hour < 100e-6 && abs-5*timebase.Hour > -100e-6)
	// Output:
	// 10 s interval measured to within 0 µs
	// absolute error under 100 µs: true
}

// ExampleNewPoller shows the controlled-emission policy: fast during
// warmup, exponential backoff once calibrated, reset on disturbance.
func ExampleNewPoller() {
	p := tscclock.NewPoller(0, 0) // defaults: 16 s .. 1024 s
	fmt.Println(p.Observe(tscclock.Status{Warmup: true}, nil))
	fmt.Println(p.Observe(tscclock.Status{}, nil))
	fmt.Println(p.Observe(tscclock.Status{}, nil))
	fmt.Println(p.Observe(tscclock.Status{UpwardShiftDetected: true}, nil))
	// Output:
	// 16s
	// 32s
	// 1m4s
	// 16s
}

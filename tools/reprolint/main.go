// Command reprolint runs the repro analyzer suite (see
// internal/analysis) over the module: wallclock, hotpathalloc,
// lockfreeread, and atomicpub, driven by //repro: directive comments.
//
// Usage:
//
//	go run ./tools/reprolint ./...
//	go run ./tools/reprolint internal/core internal/ensemble
//
// Exit status: 0 clean, 1 findings, 2 load or usage error. Output is
// one finding per line in the standard file:line:col: form, so editors
// and CI annotate it like any other Go tool.
//
// reprolint is stdlib-only: it parses and type-checks the module with
// go/types and the source importer, so it builds in the main module
// with no external dependencies.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-list] [-only name,...] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s (waiver: //repro:%s)\n", a.Name, a.Doc, a.Waiver)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range splitComma(*only) {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "reprolint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load("", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/ntp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeLoopback/shards=1/batch=1-8         	   47148	      4464 ns/op	       0 B/op	       0 allocs/op	    224037 replies/s	         2.000 sys/reply
BenchmarkServeLoopback/shards=1/batch=32/txstamp-8	   73800	      3374 ns/op	    296365 replies/s	         0.06306 sys/reply	         0.9999 txcov
some test chatter that is not a benchmark
PASS
ok  	repro/internal/ntp	1.671s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkServeLoopback/shards=1/batch=1" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b0.Name)
	}
	if b0.Pkg != "repro/internal/ntp" || b0.Iterations != 47148 {
		t.Errorf("b0 = %+v", b0)
	}
	for unit, want := range map[string]float64{
		"ns/op": 4464, "B/op": 0, "allocs/op": 0, "replies/s": 224037, "sys/reply": 2,
	} {
		if got := b0.Metrics[unit]; got != want {
			t.Errorf("b0 %s = %v, want %v", unit, got, want)
		}
	}
	b1 := rep.Benchmarks[1]
	if b1.Metrics["txcov"] != 0.9999 {
		t.Errorf("b1 txcov = %v, want 0.9999", b1.Metrics["txcov"])
	}
}

func TestParseBenchRejectsMangledLine(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX-8 100 4464 ns/op trailing\n"))
	if err == nil {
		t.Error("odd value/unit pairing accepted")
	}
	_, err = parseBench(strings.NewReader("BenchmarkX-8 notanumber\n"))
	if err == nil {
		t.Error("bad iteration count accepted")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	rep, err := parseBench(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from chrome-only input", len(rep.Benchmarks))
	}
}

// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so performance numbers land in the
// repo as data rather than prose. It reads the benchmark stream on
// stdin and writes BENCH_<date>.json (override with -o):
//
//	go test ./internal/ntp/ -run xxx -bench BenchmarkServeLoopback -benchmem | go run ./tools/benchjson
//	make bench-json
//
// Every `Benchmark*` result line is parsed into its iteration count
// and the full metric set — the standard ns/op, B/op, allocs/op plus
// any b.ReportMetric units the benchmark emits (replies/s, sys/reply,
// rxcov/txcov stamp coverage, ...). Header lines (goos/goarch/pkg/cpu)
// are carried into the snapshot so a BENCH file is self-describing;
// comparing two is a jq one-liner instead of a diff of aligned
// columns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole snapshot.
type Report struct {
	Date       string      `json:"date"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	flag.Parse()

	rep, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark result lines on stdin")
	}
	rep.Date = time.Now().Format("2006-01-02")

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), path)
}

// parseBench consumes a `go test -bench` stream. The line grammar is
// stable across Go releases: a result line is the benchmark name, the
// iteration count, then (value, unit) pairs; everything else is either
// a known header (goos/goarch/pkg/cpu) or ignorable chrome (PASS, ok,
// test log output).
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseResultLine(line)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", line, err)
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// parseResultLine splits one result line into name, iterations, and
// metric pairs.
func parseResultLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	// The name carries a -GOMAXPROCS suffix (Benchmark/sub-8); strip
	// it so the name is stable across machines.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("odd value/unit pairing")
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %w", rest[i], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}

package tscclock

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/timebase"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing NominalPeriod accepted")
	}
	if _, err := New(Options{NominalPeriod: 1e-9}); err != nil {
		t.Errorf("minimal options rejected: %v", err)
	}
}

func TestAdvancedOptionsApplied(t *testing.T) {
	opts := Options{
		NominalPeriod: 1e-9,
		PollPeriod:    16,
		UseLocalRate:  true,
		Delta:         20e-6,
		Advanced: &AdvancedOptions{
			TauStar:       800,
			EStarFactor:   10,
			OffsetWindow:  400,
			WarmupSamples: 16,
		},
	}
	cfg := opts.buildConfig()
	if cfg.TauStar != 800 || cfg.EStarFactor != 10 || cfg.OffsetWindow != 400 ||
		cfg.WarmupSamples != 16 || cfg.Delta != 20e-6 || !cfg.UseLocalRate {
		t.Errorf("advanced options not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("lowered config invalid: %v", err)
	}
}

func TestEndToEndOnSimulatedTrace(t *testing.T) {
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerInt(), 16, timebase.Day, 77))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{NominalPeriod: 1.0 / 548655270, PollPeriod: 16})
	if err != nil {
		t.Fatal(err)
	}
	var last Status
	for _, e := range tr.Completed() {
		st, err := c.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te)
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	// Rate within 0.1 PPM of the oracle.
	if e := math.Abs(last.Period/tr.Osc.MeanPeriod() - 1); e > timebase.FromPPM(0.1) {
		t.Errorf("period error %v PPM", timebase.PPM(e))
	}
	// Absolute clock within ~0.15 ms of truth at end of day.
	tt := 23.0 * timebase.Hour
	if d := math.Abs(c.AbsoluteTime(tr.Osc.ReadTSC(tt)) - tt); d > 150e-6 {
		t.Errorf("absolute clock error %v", d)
	}
	// Difference clock accurate over 60 s.
	c1, c2 := tr.Osc.ReadTSC(tt), tr.Osc.ReadTSC(tt+60)
	if d := math.Abs(c.Between(c1, c2) - 60); d > 3e-6 {
		t.Errorf("difference clock error %v over 60 s", d)
	}
	// Accessors agree with the last status.
	if got := c.Period(); got != last.Period {
		t.Errorf("Period() = %v, status %v", got, last.Period)
	}
	if off, ok := c.Offset(); !ok || off != last.Offset {
		t.Errorf("Offset() = %v/%v, status %v", off, ok, last.Offset)
	}
	if c.MinRTT() != last.MinRTT {
		t.Error("MinRTT accessor disagrees")
	}
	if c.Exchanges() != len(tr.Completed()) {
		t.Errorf("Exchanges() = %d", c.Exchanges())
	}
}

func TestConcurrentReaders(t *testing.T) {
	tr, err := sim.Generate(sim.NewScenario(sim.MachineRoom, sim.ServerLoc(), 16, 2*timebase.Hour, 78))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{NominalPeriod: 1.0 / 548655270, PollPeriod: 16})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = c.AbsoluteTime(1 << 40)
					_ = c.Between(1<<40, 1<<40+1000)
					_, _ = c.Offset()
				}
			}
		}()
	}
	for _, e := range tr.Completed() {
		if _, err := c.ProcessNTPExchange(e.Ta, e.Tf, e.Tb, e.Te); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
}

func TestStatusFlagsSurface(t *testing.T) {
	// A degenerate feed must surface engine errors, not panic.
	c, err := New(Options{NominalPeriod: 1e-9, PollPeriod: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProcessNTPExchange(10, 10, 1, 1); err == nil {
		t.Error("invalid exchange accepted")
	}
	st, err := c.ProcessNTPExchange(1000, 2000, 1, 1.000001)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Warmup {
		t.Error("first exchange not flagged as warmup")
	}
}

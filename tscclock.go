// Package tscclock is a from-scratch Go implementation of the robust
// software clock synchronization system of Veitch, Babu & Pásztor,
// "Robust Synchronization of Software Clocks Across the Internet"
// (IMC 2004) — the precursor of the RADclock / feed-forward clock
// family.
//
// The clock is built on a raw monotonic counter (the TSC register in the
// paper; any stable cycle counter works) and calibrated from the normal
// flow of NTP packets against a nearby stratum-1 server. Unlike the
// classic feedback-disciplined SW-NTP clock, calibration is rate-centric
// and filtering is decoupled from estimation, which makes the clock
// robust to packet loss, server outages, route changes, congestion and
// even faulty server timestamps.
//
// Two clocks are exposed, as the paper argues they must be:
//
//   - the difference clock measures time intervals with the smooth rate
//     estimate p̂ only — accurate to ~0.1 PPM, ideal below the SKM scale
//     (~1000 s);
//   - the absolute clock additionally corrects the offset estimate θ̂ —
//     accurate to tens of microseconds against a good server.
//
// Feed completed NTP exchanges to Clock.ProcessNTPExchange, or use Live
// to run the whole pipeline over UDP against a real NTP server.
package tscclock

import (
	"sync"

	"repro/internal/core"
	"repro/internal/timebase"
)

// Options configures a Clock. Zero values take the paper's defaults.
type Options struct {
	// NominalPeriod is the a-priori duration of one counter cycle in
	// seconds (e.g. 1/548655270 for a 548.66 MHz TSC, or 1e-9 for a
	// nanosecond-resolution monotonic counter). Required.
	NominalPeriod float64

	// PollPeriod is the nominal NTP polling period in seconds.
	// Default: 64.
	PollPeriod float64

	// UseLocalRate enables the quasi-local rate refinement (p̂_l) and
	// linear prediction in the offset estimate.
	UseLocalRate bool

	// Delta overrides the host timestamping error unit δ (default 15 µs;
	// raise it for user-space timestamping).
	Delta float64

	// Advanced exposes every algorithm parameter for research use; when
	// non-nil it takes precedence over the fields above except
	// NominalPeriod and PollPeriod.
	Advanced *AdvancedOptions
}

// AdvancedOptions mirrors the full parameter set of the paper's
// algorithms; see the package documentation of the fields' namesakes in
// Section 5 of the paper.
type AdvancedOptions struct {
	TauStar              float64 // SKM scale τ* (s)
	EStarFactor          float64 // rate acceptance threshold, ×δ
	LocalRateWindow      float64 // τ̄ (s)
	LocalRateW           int     // W
	LocalRateQualityPPM  float64 // γ* (PPM)
	RateSanity           float64 // local-rate sanity bound
	OffsetWindow         float64 // τ′ (s)
	EFactor              float64 // offset quality width, ×δ
	AgingRatePPM         float64 // ε (PPM)
	EStarStarFactor      float64 // poor-quality fallback, ×E
	OffsetSanity         float64 // E_s (s)
	TopWindow            float64 // T (s)
	WarmupSamples        int     // T_w (packets)
	ShiftWindow          float64 // T_s (s)
	ShiftThresholdFactor float64 // upward-shift trigger, ×E
}

// buildConfig lowers Options onto the engine configuration.
func (o Options) buildConfig() core.Config {
	poll := o.PollPeriod
	if poll == 0 {
		poll = 64
	}
	cfg := core.DefaultConfig(o.NominalPeriod, poll)
	cfg.UseLocalRate = o.UseLocalRate
	if o.Delta > 0 {
		cfg.Delta = o.Delta
	}
	if a := o.Advanced; a != nil {
		if a.TauStar > 0 {
			cfg.TauStar = a.TauStar
		}
		if a.EStarFactor > 0 {
			cfg.EStarFactor = a.EStarFactor
		}
		if a.LocalRateWindow > 0 {
			cfg.LocalRateWindow = a.LocalRateWindow
		}
		if a.LocalRateW > 0 {
			cfg.LocalRateW = a.LocalRateW
		}
		if a.LocalRateQualityPPM > 0 {
			cfg.LocalRateQuality = timebase.FromPPM(a.LocalRateQualityPPM)
		}
		if a.RateSanity > 0 {
			cfg.RateSanity = a.RateSanity
		}
		if a.OffsetWindow > 0 {
			cfg.OffsetWindow = a.OffsetWindow
		}
		if a.EFactor > 0 {
			cfg.EFactor = a.EFactor
		}
		if a.AgingRatePPM > 0 {
			cfg.AgingRate = timebase.FromPPM(a.AgingRatePPM)
		}
		if a.EStarStarFactor > 0 {
			cfg.EStarStarFactor = a.EStarStarFactor
		}
		if a.OffsetSanity > 0 {
			cfg.OffsetSanity = a.OffsetSanity
		}
		if a.TopWindow > 0 {
			cfg.TopWindow = a.TopWindow
		}
		if a.WarmupSamples > 0 {
			cfg.WarmupSamples = a.WarmupSamples
		}
		if a.ShiftWindow > 0 {
			cfg.ShiftWindow = a.ShiftWindow
		}
		if a.ShiftThresholdFactor > 0 {
			cfg.ShiftThresholdFactor = a.ShiftThresholdFactor
		}
	}
	return cfg
}

// Status reports the synchronization state after one exchange.
type Status struct {
	// Period is the current rate estimate p̂ (seconds per counter cycle)
	// and PeriodQuality its estimated relative error bound.
	Period        float64
	PeriodQuality float64
	// LocalPeriod is the quasi-local rate estimate; LocalValid reports
	// whether it is usable (false when the refinement is disabled).
	LocalPeriod float64
	LocalValid  bool
	// Offset is the current estimate θ̂ of the uncorrected clock's
	// offset from true time, in seconds.
	Offset float64
	// RTT is this exchange's round-trip time, MinRTT the running
	// minimum r̂, and PointError RTT − r̂ (the filter statistic).
	RTT, MinRTT, PointError float64
	// Flags describing how the exchange was used.
	Accepted            bool // packet accepted for the rate pair
	RateUpdated         bool // p̂ changed
	PoorQuality         bool // E** fallback in the offset filter
	OffsetSanity        bool // sanity check duplicated previous θ̂
	UpwardShiftDetected bool // route-change level shift detected
	ServerChanged       bool // server identity (RefID/stratum) changed
	Warmup              bool // still within the warmup phase
}

// Clock is the calibrated TSC-NTP clock. It is safe for concurrent
// use, and reads never block: the synchronization feed publishes an
// immutable read snapshot (core.Readout) through an atomic pointer
// after every exchange, and every read method is a pure function of
// the latest snapshot — no mutex is acquired on any read, under
// unbounded reader concurrency. The mutex below serializes writers
// (ProcessNTPExchange and friends) only.
type Clock struct {
	mu   sync.Mutex // serializes the synchronization feed, not reads
	sync *core.Sync
}

// New constructs a Clock.
func New(opts Options) (*Clock, error) {
	s, err := core.NewSync(opts.buildConfig())
	if err != nil {
		return nil, err
	}
	return &Clock{sync: s}, nil
}

// ProcessNTPExchange feeds one completed NTP exchange: host counter
// stamps ta (just before send) and tf (just after receive), and the
// server's receive/transmit stamps tb, te in seconds. Exchanges must be
// fed in arrival order; lost exchanges are simply never fed.
func (c *Clock) ProcessNTPExchange(ta, tf uint64, tb, te float64) (Status, error) {
	return c.processWithIdentity(ta, tf, tb, te, core.Identity{})
}

// ProcessNTPExchangeFrom additionally carries the server's identity
// (reference ID and stratum from the NTP payload); a change of identity
// re-bases the minimum-RTT filter immediately instead of waiting out the
// level-shift detection window (the paper's Section 2.3 extension).
func (c *Clock) ProcessNTPExchangeFrom(ta, tf uint64, tb, te float64, refID uint32, stratum uint8) (Status, error) {
	return c.processWithIdentity(ta, tf, tb, te, core.Identity{RefID: refID, Stratum: stratum})
}

func (c *Clock) processWithIdentity(ta, tf uint64, tb, te float64, id core.Identity) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.sync.Process(core.Input{Ta: ta, Tf: tf, Tb: tb, Te: te})
	if err != nil {
		return Status{}, err
	}
	changed := c.sync.ObserveIdentity(id)
	return statusFromResult(res, changed), nil
}

// statusFromResult lowers an engine result onto the public Status; the
// single mapping shared by Clock and Ensemble.
func statusFromResult(res core.Result, serverChanged bool) Status {
	return Status{
		ServerChanged:       serverChanged,
		Period:              res.PHat,
		PeriodQuality:       res.PQuality,
		LocalPeriod:         res.PLocal,
		LocalValid:          res.PLocalValid,
		Offset:              res.ThetaHat,
		RTT:                 res.RTT,
		MinRTT:              res.RTTHat,
		PointError:          res.PointError,
		Accepted:            res.Accepted,
		RateUpdated:         res.RateUpdated,
		PoorQuality:         res.PoorQuality,
		OffsetSanity:        res.OffsetSanityTriggered,
		UpwardShiftDetected: res.UpwardShiftDetected,
		Warmup:              res.Warmup,
	}
}

// Readout returns the latest published read snapshot: an immutable
// value answering every clock read consistently, with a staleness
// bound (Readout.Age). Hold it to take several reads from one instant
// of calibration; call again to refresh. Never nil, never blocks.
//
//repro:readpath
func (c *Clock) Readout() *core.Readout { return c.sync.Readout() }

// AbsoluteTime reads the absolute clock Ca at a counter value: seconds
// on the server's timescale (the simulation origin, or the NTP era on
// the live path). Use it only when absolute timestamps are required;
// the difference clock is more accurate for intervals (Section 2.2).
// Lock-free: a pure function of the latest published readout.
//
//repro:readpath
func (c *Clock) AbsoluteTime(counter uint64) float64 {
	return c.sync.Readout().AbsoluteTime(counter)
}

// Between measures the interval between two counter readings with the
// difference clock Cd: smooth, driven only by the rate estimate, and
// the right tool for intervals below the SKM scale (~1000 s).
// Lock-free.
//
//repro:readpath
func (c *Clock) Between(c1, c2 uint64) float64 {
	return c.sync.Readout().DifferenceSpan(c1, c2)
}

// Period returns the current rate estimate (seconds per cycle).
// Lock-free.
//
//repro:readpath
func (c *Clock) Period() float64 {
	return c.sync.Readout().P
}

// Offset returns the current offset estimate θ̂ and whether one exists.
// Lock-free.
//
//repro:readpath
func (c *Clock) Offset() (float64, bool) {
	r := c.sync.Readout()
	return r.Theta, r.HaveTheta
}

// MinRTT returns the current minimum round-trip-time estimate r̂.
// Lock-free.
//
//repro:readpath
func (c *Clock) MinRTT() float64 {
	return c.sync.Readout().RTTHat
}

// Exchanges returns the number of exchanges processed. Lock-free.
//
//repro:readpath
func (c *Clock) Exchanges() int {
	return c.sync.Readout().Count
}

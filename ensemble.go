package tscclock

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ensemble"
)

// EnsembleOptions configures a multi-server ensemble clock.
type EnsembleOptions struct {
	// Servers is the number of upstream servers. Required (≥ 1).
	Servers int

	// Clock carries the per-server calibration options (every server
	// gets an identical engine; per-server state diverges with the
	// data). NominalPeriod is required, as for Clock.
	Clock Options

	// PenaltyDecay, ErrAlpha and AgreementFactor tune the trust scoring
	// and agreement step; zero values take the ensemble defaults.
	PenaltyDecay    float64
	ErrAlpha        float64
	AgreementFactor float64

	// ReadmitAfter is the falseticker re-admission hysteresis: the
	// number of consecutive selection sweeps a flagged server must
	// intersect the majority before it votes again. Zero takes the
	// default (8).
	ReadmitAfter int

	// DisableSelection turns the interval-intersection selection stage
	// off, reverting to the pure trust-weighted median over every ready
	// server. For ablation; leave it off in production — without
	// selection, a minority of agreeing servers holding more than half
	// the total weight can drag the combined clock.
	DisableSelection bool

	// AsymCorrection enables the damped first-order path-asymmetry
	// correction: each selected server's absolute clock is shifted by an
	// EWMA of its asymmetry hint (its signed disagreement with the
	// selected-set midpoint) before the combining median, clamped to
	// AsymClampFrac of its correctness-interval half-width and gated off
	// while the server is unselected or penalized. Off by default — the
	// combined clock is bit-identical to the uncorrected combiner while
	// disabled. AsymAlpha (default 1/64) is the EWMA gain; AsymClampFrac
	// (default 1/2) the clamp fraction.
	AsymCorrection bool
	AsymAlpha      float64
	AsymClampFrac  float64

	// MinVotingSynced is the degradation-ladder quorum: the number of
	// fresh voting servers required for the combined clock to report
	// SYNCED (fewer is DEGRADED, none is HOLDOVER). Zero takes the
	// default majority, Servers/2+1.
	MinVotingSynced int
	// RecoverAfter is the ladder's upgrade hysteresis: consecutive
	// exchanges at a better level before the state actually rises
	// (downgrades are immediate). Zero takes the default (3).
	RecoverAfter int
	// StaleAfterPolls is how many polling periods without an answer
	// cost a server its vote. Zero takes the default (8).
	StaleAfterPolls int
	// HoldoverAfter and UnsyncedAfter are the read-time staleness caps:
	// a readout older than HoldoverAfter reads as at most HOLDOVER, and
	// older than UnsyncedAfter as UNSYNCED. Zero takes the defaults
	// (8 and 128 polling periods, floored at 1 min and 1 h).
	HoldoverAfter time.Duration
	UnsyncedAfter time.Duration
}

// EnsembleStatus reports the state after one exchange through the
// ensemble: the per-server view of the exchange plus the combined
// clock's state.
type EnsembleStatus struct {
	// Status is the per-server synchronization state for the exchange,
	// exactly as a single Clock would report it.
	Status

	// Server is the index of the server that served the exchange.
	Server int
	// Weight is that server's normalized combining weight after the
	// exchange. Servers still in warmup weigh 0 once any server has
	// graduated; until then every polled server weighs equally so the
	// combined clock is defined from the first exchange. Flagged
	// falsetickers also weigh 0 — except during the rare transient in
	// which *every* ready server is excluded (a mass eviction, or all
	// still in re-admission probation), when the ready servers vote as
	// if selection were off rather than leave the clock undefined.
	Weight float64
	// Rate is the combined rate estimate (seconds per counter cycle).
	Rate float64
	// Agreement counts the servers whose error intervals contain the
	// combined absolute time at this exchange's receive stamp —
	// Servers means full agreement, below a majority is a red flag.
	Agreement int
	// Selected marks the truechimer set after this exchange: the ready
	// servers whose correctness intervals intersect the majority.
	// Falsetickers counts ready servers currently voted out by the
	// interval-intersection stage (zero selected-set membership).
	Selected     []bool
	Falsetickers int
	// AsymmetryHint is each server's signed absolute-clock disagreement
	// against the selected-set midpoint, in seconds — an estimate of
	// per-path asymmetry error that no single server/path can observe
	// about itself (paper §2.3). Zero for servers still in warmup.
	AsymmetryHint []float64
	// State is the degradation-ladder state after this exchange
	// (writer-side: read-time staleness capping does not apply here,
	// since the exchange itself is fresh).
	State ensemble.State
	// VotingCount is the number of servers backing the combined vote:
	// ready, selected, fresh, and holding an offset estimate.
	VotingCount int
}

// Ensemble is the multi-server counterpart of Clock: one calibration
// engine per upstream NTP server over a shared host counter, combined
// into a single robust clock by interval-intersection selection
// (Marzullo/NTP-select: only the largest mutually-agreeing majority
// keeps its vote, excluded falsetickers re-enter only after sustained
// re-agreement) followed by trust-weighted median agreement — so faulty
// or route-shifted servers, even ones that agree with each other, are
// outvoted rather than followed. It is safe for concurrent use, like
// Clock, and reads never block: every combine publishes an immutable
// combined readout through an atomic pointer, and every read method is
// a pure function of the latest one — no mutex on any read, safe under
// unbounded reader concurrency (the downstream NTP serving shards read
// this way). The mutex serializes the exchange feed only.
type Ensemble struct {
	mu  sync.Mutex // serializes the exchange feed, not reads
	ens *ensemble.Ensemble
}

// NewEnsemble constructs an Ensemble.
func NewEnsemble(opts EnsembleOptions) (*Ensemble, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("tscclock: EnsembleOptions.Servers must be ≥ 1")
	}
	cfgs := make([]core.Config, opts.Servers)
	for i := range cfgs {
		cfgs[i] = opts.Clock.buildConfig()
	}
	ens, err := ensemble.New(ensemble.Config{
		Engines:          cfgs,
		PenaltyDecay:     opts.PenaltyDecay,
		ErrAlpha:         opts.ErrAlpha,
		AgreementFactor:  opts.AgreementFactor,
		ReadmitAfter:     opts.ReadmitAfter,
		DisableSelection: opts.DisableSelection,
		AsymCorrection:   opts.AsymCorrection,
		AsymAlpha:        opts.AsymAlpha,
		AsymClampFrac:    opts.AsymClampFrac,
		MinVotingSynced:  opts.MinVotingSynced,
		RecoverAfter:     opts.RecoverAfter,
		StaleAfterPolls:  opts.StaleAfterPolls,
		HoldoverAfter:    opts.HoldoverAfter.Seconds(),
		UnsyncedAfter:    opts.UnsyncedAfter.Seconds(),
	})
	if err != nil {
		return nil, err
	}
	return &Ensemble{ens: ens}, nil
}

// Servers returns the number of upstream servers.
func (e *Ensemble) Servers() int { return e.ens.Size() }

// ProcessNTPExchange feeds one completed NTP exchange with the given
// server (stamps as for Clock.ProcessNTPExchange). Exchanges must be
// fed in arrival order per server; cross-server order is free, which is
// what staggered polling schedules produce.
func (e *Ensemble) ProcessNTPExchange(server int, ta, tf uint64, tb, te float64) (EnsembleStatus, error) {
	return e.processWithIdentity(server, ta, tf, tb, te, core.Identity{})
}

// ProcessNTPExchangeFrom additionally carries the server's identity
// (reference ID and stratum); a change re-bases that server's RTT
// filter and dents its combining weight until the new path proves
// itself.
func (e *Ensemble) ProcessNTPExchangeFrom(server int, ta, tf uint64, tb, te float64, refID uint32, stratum uint8) (EnsembleStatus, error) {
	return e.processWithIdentity(server, ta, tf, tb, te, core.Identity{RefID: refID, Stratum: stratum})
}

func (e *Ensemble) processWithIdentity(server int, ta, tf uint64, tb, te float64, id core.Identity) (EnsembleStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res, err := e.ens.Process(server, core.Input{Ta: ta, Tf: tf, Tb: tb, Te: te})
	if err != nil {
		return EnsembleStatus{}, err
	}
	// The index was validated by Process above.
	changed, _ := e.ens.ObserveIdentity(server, id)
	// The combined state comes from the readout Process/ObserveIdentity
	// just published — the same snapshot concurrent readers see.
	r := e.ens.Readout()
	sel := make([]bool, len(r.Servers))
	hint := make([]float64, len(r.Servers))
	for k := range r.Servers {
		sel[k] = r.Servers[k].Selected
		hint[k] = r.Servers[k].AsymmetryHint
	}
	return EnsembleStatus{
		Status:        statusFromResult(res, changed),
		Server:        server,
		Weight:        r.Servers[server].Weight,
		Rate:          r.Rate,
		Agreement:     r.Agreement(tf),
		Selected:      sel,
		Falsetickers:  r.Falsetickers,
		AsymmetryHint: hint,
		State:         r.BaseState,
		VotingCount:   r.VotingCount,
	}, nil
}

// Readout returns the latest published combined readout: an immutable
// snapshot of the whole combine (per-server clocks, weights, selection
// result) answering every read consistently, with a staleness bound
// (Readout.Age). Never nil, never blocks.
//
//repro:readpath
func (e *Ensemble) Readout() *ensemble.Readout { return e.ens.Readout() }

// AbsoluteTime reads the combined absolute clock at a counter value:
// the trust-weighted median of the per-server absolute clocks.
// Lock-free: a pure function of the latest published combine.
//
//repro:readpath
func (e *Ensemble) AbsoluteTime(counter uint64) float64 {
	return e.ens.Readout().AbsoluteTime(counter)
}

// Between measures the interval between two counter readings with the
// combined difference clock (combined rate only), like Clock.Between.
// Lock-free.
//
//repro:readpath
func (e *Ensemble) Between(c1, c2 uint64) float64 {
	return e.ens.Readout().DifferenceSpan(c1, c2)
}

// Period returns the combined rate estimate (seconds per cycle).
// Lock-free.
//
//repro:readpath
func (e *Ensemble) Period() float64 {
	return e.ens.Readout().RateHat()
}

// Weights returns the current normalized per-server combining weights
// (zero for warmup servers and flagged falsetickers; see
// EnsembleStatus.Weight for the all-excluded transient). Lock-free.
//
//repro:readpath
func (e *Ensemble) Weights() []float64 {
	return e.ens.Readout().Weights()
}

// ServerStates returns the per-server trust diagnostics. Lock-free.
//
//repro:readpath
func (e *Ensemble) ServerStates() []ensemble.ServerState {
	return e.ens.Readout().ServerStates()
}

// State returns the degradation-ladder state of the combined clock as
// read at the given counter value: the writer-side base state capped by
// how stale the latest combine is (older than HoldoverAfter reads as at
// most HOLDOVER, older than UnsyncedAfter as UNSYNCED). Lock-free.
//
//repro:readpath
func (e *Ensemble) State(counter uint64) ensemble.State {
	return e.ens.Readout().State(counter)
}

// Health returns the serving-facing health summary of the voting set
// (frozen at the last trusted combine while no server votes). Lock-free.
//
//repro:readpath
func (e *Ensemble) Health() ensemble.Health {
	return e.ens.Readout().Health
}

// Exchanges returns the total number of exchanges processed. Lock-free.
//
//repro:readpath
func (e *Ensemble) Exchanges() int {
	return e.ens.Readout().Exchanges
}

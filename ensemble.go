package tscclock

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ensemble"
)

// EnsembleOptions configures a multi-server ensemble clock.
type EnsembleOptions struct {
	// Servers is the number of upstream servers. Required (≥ 1).
	Servers int

	// Clock carries the per-server calibration options (every server
	// gets an identical engine; per-server state diverges with the
	// data). NominalPeriod is required, as for Clock.
	Clock Options

	// PenaltyDecay, ErrAlpha and AgreementFactor tune the trust scoring
	// and agreement step; zero values take the ensemble defaults.
	PenaltyDecay    float64
	ErrAlpha        float64
	AgreementFactor float64
}

// EnsembleStatus reports the state after one exchange through the
// ensemble: the per-server view of the exchange plus the combined
// clock's state.
type EnsembleStatus struct {
	// Status is the per-server synchronization state for the exchange,
	// exactly as a single Clock would report it.
	Status

	// Server is the index of the server that served the exchange.
	Server int
	// Weight is that server's normalized combining weight after the
	// exchange. Servers still in warmup weigh 0 once any server has
	// graduated; until then every polled server weighs equally so the
	// combined clock is defined from the first exchange.
	Weight float64
	// Rate is the combined rate estimate (seconds per counter cycle).
	Rate float64
	// Agreement counts the servers whose error intervals contain the
	// combined absolute time at this exchange's receive stamp —
	// Servers means full agreement, below a majority is a red flag.
	Agreement int
}

// Ensemble is the multi-server counterpart of Clock: one calibration
// engine per upstream NTP server over a shared host counter, combined
// into a single robust clock by trust-weighted median agreement so that
// a faulty or route-shifted server is outvoted rather than followed.
// It is safe for concurrent use, like Clock.
type Ensemble struct {
	mu  sync.Mutex
	ens *ensemble.Ensemble
}

// NewEnsemble constructs an Ensemble.
func NewEnsemble(opts EnsembleOptions) (*Ensemble, error) {
	if opts.Servers < 1 {
		return nil, fmt.Errorf("tscclock: EnsembleOptions.Servers must be ≥ 1")
	}
	cfgs := make([]core.Config, opts.Servers)
	for i := range cfgs {
		cfgs[i] = opts.Clock.buildConfig()
	}
	ens, err := ensemble.New(ensemble.Config{
		Engines:         cfgs,
		PenaltyDecay:    opts.PenaltyDecay,
		ErrAlpha:        opts.ErrAlpha,
		AgreementFactor: opts.AgreementFactor,
	})
	if err != nil {
		return nil, err
	}
	return &Ensemble{ens: ens}, nil
}

// Servers returns the number of upstream servers.
func (e *Ensemble) Servers() int { return e.ens.Size() }

// ProcessNTPExchange feeds one completed NTP exchange with the given
// server (stamps as for Clock.ProcessNTPExchange). Exchanges must be
// fed in arrival order per server; cross-server order is free, which is
// what staggered polling schedules produce.
func (e *Ensemble) ProcessNTPExchange(server int, ta, tf uint64, tb, te float64) (EnsembleStatus, error) {
	return e.processWithIdentity(server, ta, tf, tb, te, core.Identity{})
}

// ProcessNTPExchangeFrom additionally carries the server's identity
// (reference ID and stratum); a change re-bases that server's RTT
// filter and dents its combining weight until the new path proves
// itself.
func (e *Ensemble) ProcessNTPExchangeFrom(server int, ta, tf uint64, tb, te float64, refID uint32, stratum uint8) (EnsembleStatus, error) {
	return e.processWithIdentity(server, ta, tf, tb, te, core.Identity{RefID: refID, Stratum: stratum})
}

func (e *Ensemble) processWithIdentity(server int, ta, tf uint64, tb, te float64, id core.Identity) (EnsembleStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	res, err := e.ens.Process(server, core.Input{Ta: ta, Tf: tf, Tb: tb, Te: te})
	if err != nil {
		return EnsembleStatus{}, err
	}
	// The index was validated by Process above.
	changed, _ := e.ens.ObserveIdentity(server, id)
	snap := e.ens.TakeSnapshot(tf)
	return EnsembleStatus{
		Status:    statusFromResult(res, changed),
		Server:    server,
		Weight:    snap.Weights[server],
		Rate:      snap.Rate,
		Agreement: snap.Agreement,
	}, nil
}

// AbsoluteTime reads the combined absolute clock at a counter value:
// the trust-weighted median of the per-server absolute clocks.
func (e *Ensemble) AbsoluteTime(counter uint64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ens.AbsoluteTime(counter)
}

// Between measures the interval between two counter readings with the
// combined difference clock (combined rate only), like Clock.Between.
func (e *Ensemble) Between(c1, c2 uint64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ens.DifferenceSpan(c1, c2)
}

// Period returns the combined rate estimate (seconds per cycle).
func (e *Ensemble) Period() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ens.RateHat()
}

// Weights returns the current normalized per-server combining weights.
func (e *Ensemble) Weights() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ens.Weights()
}

// ServerStates returns the per-server trust diagnostics.
func (e *Ensemble) ServerStates() []ensemble.ServerState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ens.ServerStates()
}

// Exchanges returns the total number of exchanges processed.
func (e *Ensemble) Exchanges() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ens.Exchanges()
}
